package analysis

import (
	"teapot/internal/ir"
	"teapot/internal/sema"
	"teapot/internal/source"
	"teapot/internal/token"
)

// vet:dup-idempotence — advisory lint for fault-tolerant protocols.
//
// Under a duplication fault budget (-net dup=N) the network may deliver
// the same message twice. A handler is safe under duplication when its
// second execution is a no-op: the landing state Drops the stale copy, or
// a guard detects that the work already happened. Two effect patterns are
// visibly NOT idempotent in the IR:
//
//   - resuming a suspended continuation behind no duplicate-detecting
//     guard: the duplicate re-resumes a continuation that no longer
//     exists (or worse, a fresh one from an unrelated request). Branches
//     whose condition derives from a support-routine result are treated
//     as guards — supports are where duplicate-detection state (e.g. the
//     stache-ft awaiting mask's TakeAwaiting) lives. Pure comparisons on
//     message fields (src = owner) do not discharge the duplicate, which
//     is exactly the documented dup=2 edge in stache-ft.
//   - a read-modify-write of a protocol variable (counter increment /
//     toggle): the duplicate applies the delta twice.
//
// The lint only fires for protocols that declare TIMEOUT (the repo's
// marker for fault-tolerant designs with a recovery path); for all other
// protocols duplication is outside the verified envelope and the lint is
// silent. Findings are advisory (info): dup=1 safety often rests on
// landing-state Drop handlers the IR-level scan cannot see. This is the
// groundwork for ROADMAP's epoch/sequence-number work.
func runDupIdempotence(c *Ctx) {
	if c.Proto.MsgIndex("TIMEOUT") < 0 {
		return
	}

	// Tags that actually travel on the network: arguments of Send/SendData.
	sent := map[int]bool{}
	for _, f := range c.IR.Funcs {
		msgConst := map[ir.Reg]int{}
		for i := range f.Code {
			in := &f.Code[i]
			switch {
			case in.Op == ir.OpConst && in.Kind == ir.KMsg:
				msgConst[in.Dst] = int(in.Int)
			case in.Op == ir.OpCall && (in.Fn.Builtin == sema.BSend || in.Fn.Builtin == sema.BSendData):
				if len(in.Args) >= 2 {
					if tag, ok := msgConst[in.Args[1]]; ok {
						sent[tag] = true
					}
				}
			}
		}
	}

	for _, f := range c.IR.Funcs {
		if f.MsgIndex < 0 || !sent[f.MsgIndex] {
			continue
		}
		findUnguardedResume(c, f)
		findCounterRMW(c, f)
	}
}

// findUnguardedResume reports Resume instructions reachable from handler
// entry without passing a branch whose condition derives from a support
// call.
func findUnguardedResume(c *Ctx, f *ir.Func) {
	// Registers (transitively) derived from a non-builtin support call.
	dep := make([]bool, f.NumRegs)
	for changed := true; changed; {
		changed = false
		mark := func(dst ir.Reg, v bool) {
			if v && !dep[dst] {
				dep[dst] = true
				changed = true
			}
		}
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Op {
			case ir.OpCall:
				if in.Fn.Builtin == sema.BNone && in.Dst != ir.NoReg {
					mark(in.Dst, true)
				}
			case ir.OpMove, ir.OpUn:
				mark(in.Dst, dep[in.A])
			case ir.OpBin:
				mark(in.Dst, dep[in.A] || dep[in.B])
			}
		}
	}

	// Reachability from instruction 0, cutting guarded branches.
	seen := make([]bool, len(f.Code))
	work := []int{0}
	var succs []int
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if i >= len(f.Code) || seen[i] {
			continue
		}
		seen[i] = true
		in := &f.Code[i]
		if in.Op == ir.OpResume {
			c.Reportf(source.SevInfo, handlerPos(c.Sema.States[f.StateIndex], f),
				"handler %s resumes a continuation with no duplicate-delivery guard: a duplicated %s re-resumes it (instr %d: %s)",
				f.Name, msgName(c.Sema, f.MsgIndex), i, in.String())
			continue
		}
		if in.Op == ir.OpBranch && dep[in.A] {
			continue // support-guarded: the support vouches for dedup
		}
		succs = f.Succs(i, succs[:0])
		work = append(work, succs...)
	}
}

// findCounterRMW reports stores to a protocol variable computed by
// arithmetic over a load of the same variable.
func findCounterRMW(c *Ctx, f *ir.Func) {
	type flow struct {
		slots map[int]bool
		arith bool
	}
	regs := make([]flow, f.NumRegs)
	get := func(r ir.Reg) flow { return regs[r] }
	merge := func(a, b flow, arith bool) flow {
		out := flow{slots: map[int]bool{}, arith: a.arith || b.arith || arith}
		for s := range a.slots {
			out.slots[s] = true
		}
		for s := range b.slots {
			out.slots[s] = true
		}
		return out
	}
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case ir.OpLoadVar:
			regs[in.Dst] = flow{slots: map[int]bool{in.Idx: true}}
		case ir.OpMove:
			regs[in.Dst] = get(in.A)
		case ir.OpUn:
			if in.Tok == token.MINUS {
				regs[in.Dst] = merge(get(in.A), flow{}, true)
			} else {
				regs[in.Dst] = get(in.A)
			}
		case ir.OpBin:
			if isArith(in.Tok) {
				regs[in.Dst] = merge(get(in.A), get(in.B), true)
			} else {
				regs[in.Dst] = flow{}
			}
		case ir.OpStoreVar:
			src := get(in.A)
			if src.arith && src.slots[in.Idx] {
				c.Reportf(source.SevInfo, in.Pos,
					"handler %s read-modify-writes protocol variable %s: a duplicated %s applies the update twice (instr %d: %s)",
					f.Name, c.Sema.ProtVars[in.Idx].Name, msgName(c.Sema, f.MsgIndex), i, in.String())
			}
		case ir.OpConst, ir.OpConstStr, ir.OpModConst, ir.OpBuiltinVal, ir.OpCall, ir.OpMakeState, ir.OpMakeCont:
			if in.Dst != ir.NoReg {
				regs[in.Dst] = flow{}
			}
		}
	}
}

func msgName(sp *sema.Program, idx int) string {
	if idx >= 0 && idx < len(sp.Messages) {
		return sp.Messages[idx].Name
	}
	return "DEFAULT"
}

package update_test

import (
	"testing"

	"teapot/internal/mc"
	"teapot/internal/protocols/update"
	"teapot/internal/runtime"
	"teapot/internal/sema"
)

func TestCompiles(t *testing.T) {
	for _, opt := range []bool{false, true} {
		a, err := update.Compile(opt)
		if err != nil {
			t.Fatalf("optimize=%v: %v", opt, err)
		}
		if got := len(a.Sema.States); got != 7 {
			t.Errorf("states = %d, want 7", got)
		}
		// The home never suspends: all suspend sites are cache-side.
		for _, site := range a.IR.Sites {
			if site.Func.Name == "Home.GET_REQ" || site.Func.Name == "Home.WRITE_REQ" {
				t.Errorf("home-side suspend at %s", site.Func.Name)
			}
		}
	}
}

// machine is the usual in-order loopback rig.
type machine struct {
	t       *testing.T
	engines []*runtime.Engine
	queue   []struct {
		dst int
		msg *runtime.Message
	}
	access       map[[2]int]sema.AccessMode
	messageCount int
}

func newMachine(t *testing.T, nodes int) (*machine, *runtime.Protocol) {
	a := update.MustCompile(true)
	m := &machine{t: t, access: map[[2]int]sema.AccessMode{{0, 0}: sema.AccReadWrite}}
	sup := update.MustSupport(a.Protocol)
	for n := 0; n < nodes; n++ {
		m.engines = append(m.engines, runtime.NewEngine(a.Protocol, n, 1, m, sup))
	}
	return m, a.Protocol
}

func (m *machine) Send(from, dst int, msg *runtime.Message) {
	m.messageCount++
	m.queue = append(m.queue, struct {
		dst int
		msg *runtime.Message
	}{dst, msg})
}
func (m *machine) AccessChange(node, id int, mode sema.AccessMode) {
	m.access[[2]int{node, id}] = mode
}
func (m *machine) RecvData(node, id int, mode sema.AccessMode) {
	m.access[[2]int{node, id}] = mode
}
func (m *machine) WakeUp(node, id int)      {}
func (m *machine) HomeNode(id int) int      { return 0 }
func (m *machine) Print(node int, s string) {}

func (m *machine) pump() {
	m.t.Helper()
	for steps := 0; len(m.queue) > 0; steps++ {
		if steps > 100000 {
			m.t.Fatal("no quiescence")
		}
		d := m.queue[0]
		m.queue = m.queue[1:]
		if err := m.engines[d.dst].Deliver(d.msg); err != nil {
			m.t.Fatalf("deliver: %v", err)
		}
	}
}

func (m *machine) event(node int, p *runtime.Protocol, name string) {
	m.t.Helper()
	if err := m.engines[node].InjectEvent(p.MsgIndex(name), 0); err != nil {
		m.t.Fatalf("event %s: %v", name, err)
	}
	m.pump()
}

func (m *machine) stateOf(p *runtime.Protocol, node int) string {
	return m.engines[node].Blocks[0].StateName(p)
}

// TestProducerConsumer: the §1 scenario. A producer writes; consumers get
// the new data in ONE message each, keeping their copies readable.
func TestProducerConsumer(t *testing.T) {
	m, p := newMachine(t, 4)
	// Consumers fetch copies.
	m.event(1, p, "RD_FAULT")
	m.event(2, p, "RD_FAULT")
	before := m.messageCount
	// Node 3 writes through.
	m.event(3, p, "WR_FAULT")
	delta := m.messageCount - before
	// WRITE_REQ + 2 UPDATEs + WRITE_ACK = 4 messages total for the write
	// serving both consumers (invalidation would need 2 invs + 2 acks +
	// the write + later 2 re-requests + 2 responses).
	if delta != 4 {
		t.Errorf("messages for the write = %d, want 4", delta)
	}
	// Consumers still hold readable copies.
	for _, n := range []int{1, 2} {
		if got := m.stateOf(p, n); got != "Cache_RO" {
			t.Errorf("consumer %d = %s, want Cache_RO", n, got)
		}
		if m.access[[2]int{n, 0}] != sema.AccReadOnly {
			t.Errorf("consumer %d access = %v", n, m.access[[2]int{n, 0}])
		}
	}
	if got := m.stateOf(p, 3); got != "Cache_RO" {
		t.Errorf("writer = %s, want Cache_RO", got)
	}
}

func TestHomeWriteUpdatesSharers(t *testing.T) {
	m, p := newMachine(t, 3)
	m.event(1, p, "RD_FAULT")
	if m.access[[2]int{0, 0}] != sema.AccReadOnly {
		t.Fatalf("home should downgrade itself while sharers exist")
	}
	m.event(0, p, "WR_RO_FAULT")
	// Sharer keeps a refreshed readable copy.
	if got := m.stateOf(p, 1); got != "Cache_RO" {
		t.Errorf("sharer = %s", got)
	}
	// Eviction returns the home to exclusive.
	m.event(1, p, "EVICT")
	if m.access[[2]int{0, 0}] != sema.AccReadWrite {
		t.Errorf("home access after last eviction = %v", m.access[[2]int{0, 0}])
	}
}

func TestModelChecked(t *testing.T) {
	a := update.MustCompile(true)
	for _, reorder := range []int{0, 1} {
		res, err := mc.Check(mc.Config{
			Proto: a.Protocol, Support: update.MustSupport(a.Protocol),
			Nodes: 2, Blocks: 1, Reorder: reorder,
			Events: update.NewEvents(a.Protocol), CheckCoherence: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("reorder=%d: violation after %d states:\n%s", reorder, res.States, res.Violation)
		}
		t.Logf("reorder=%d: states=%d transitions=%d", reorder, res.States, res.Transitions)
	}
}

package mc_test

import (
	"strings"
	"testing"

	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/protocols/stache"
)

func stacheFTConfig(t *testing.T, nodes, blocks int, net netmodel.Model) mc.Config {
	t.Helper()
	a := stache.MustCompileFT(true)
	return mc.Config{
		Proto:          a.Protocol,
		Support:        stache.MustFTSupport(a.Protocol, nodes),
		Nodes:          nodes,
		Blocks:         blocks,
		Net:            net,
		Events:         stache.NewEvents(a.Protocol),
		CheckCoherence: true,
	}
}

// TestStacheFailsUnderDrop: the base protocol has no retransmission, so a
// single dropped message must be reported — as a lost-message stall, not a
// generic deadlock — and the counterexample trace must show the drop.
func TestStacheFailsUnderDrop(t *testing.T) {
	cfg := stacheConfig(t, 2, 1, 0)
	cfg.Net = netmodel.Model{MaxDrops: 1}
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation == nil {
		t.Fatal("stache passed under drop=1; a lost message should stall it")
	}
	if res.Violation.Kind != "deadlock" {
		t.Fatalf("violation kind = %q, want deadlock:\n%s", res.Violation.Kind, res.Violation)
	}
	if !strings.Contains(res.Violation.Msg, "dropped message") {
		t.Errorf("deadlock message does not name the dropped message:\n%s", res.Violation.Msg)
	}
	var sawDrop bool
	for _, step := range res.Violation.Trace {
		if strings.Contains(step, "DROP") {
			sawDrop = true
			break
		}
	}
	if !sawDrop {
		t.Errorf("counterexample trace has no DROP step:\n%s", strings.Join(res.Violation.Trace, "\n"))
	}
}

// TestStacheFTUnderFaults: the fault-tolerant variant must verify clean —
// full coherence checking — under every budget scripts/check.sh smokes.
func TestStacheFTUnderFaults(t *testing.T) {
	nets := map[string]netmodel.Model{
		"clean":     {},
		"reorder=1": {Reorder: 1},
		"drop=1":    {MaxDrops: 1},
		"dup=1":     {MaxDups: 1},
		"drop=1,dup=1": {
			MaxDrops: 1,
			MaxDups:  1,
		},
	}
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			res, err := mc.Check(stacheFTConfig(t, 2, 1, net))
			if err != nil {
				t.Fatalf("mc: %v", err)
			}
			if res.Violation != nil {
				t.Fatalf("violation under %s:\n%s", name, res.Violation)
			}
			if net.Active() && res.States <= 100 {
				t.Errorf("suspiciously small fault exploration: %d states", res.States)
			}
		})
	}
}

// TestStacheFTTimeoutOnlyUnderFaults: on a perfect network the TIMEOUT
// pseudo-message must never fire — fault-free exploration of the FT
// variant may not contain a single TIMEOUT transition.
func TestStacheFTTimeoutOnlyUnderFaults(t *testing.T) {
	cfg := stacheFTConfig(t, 2, 1, netmodel.Model{})
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation on clean network:\n%s", res.Violation)
	}
	base, err := mc.Check(stacheConfig(t, 2, 1, 0))
	if err != nil {
		t.Fatalf("mc base: %v", err)
	}
	// The FT source adds handlers but no new reachable behavior on a clean
	// network, aside from home-side idempotent re-grant branches that are
	// never taken; state counts beyond 2x the base would mean TIMEOUT or
	// stale-drop paths are firing without faults.
	if res.States > 2*base.States {
		t.Errorf("clean-network FT exploration has %d states vs base %d — fault paths leaking into fault-free runs?",
			res.States, base.States)
	}
}

package analysis

import (
	"teapot/internal/ir"
	"teapot/internal/source"
)

// runCostLint surfaces the paper's Table 1 allocation-count optimization as
// a diagnostic: a suspend site whose continuation record is heap-allocated
// (non-empty save set) even though every saved register holds a
// compile-time constant. Such values can be rematerialized after the
// resume instead of saved, which would empty the save set and make the
// record static ("a continuation can be statically allocated and used by
// all handler invocations", §5). Advisory only — the protocol is correct,
// just paying an avoidable allocation on a hot fault path.
func runCostLint(c *Ctx) {
	for _, site := range c.IR.Sites {
		if site.Static {
			continue
		}
		fn := site.Func
		saved := fn.Frags[site.FragIdx].Saved
		if len(saved) == 0 {
			continue
		}
		remat := 0
		for _, r := range saved {
			if constOnlyReg(fn, r) {
				remat++
			}
		}
		if remat != len(saved) {
			continue
		}
		pos := suspendPos(fn, site)
		c.Reportf(source.SevInfo, pos,
			"suspend site %d in %s heap-allocates a continuation saving %d register(s) that only ever hold constants: rematerialize them after the resume to make the record static",
			site.ID, fn.Name, len(saved))
	}
}

// constOnlyReg reports whether every definition of r in fn is a constant
// load, so its value at any point is a compile-time constant... provided it
// has exactly one definition (several constant defs could disagree).
// Unoptimized code routes constants through a temporary (const into a temp,
// then a Move into the variable slot), so single-def Move chains are
// followed; the depth bound guards against pathological cycles.
func constOnlyReg(fn *ir.Func, r ir.Reg) bool {
	for depth := 0; depth < 8; depth++ {
		var def *ir.Instr
		for i := range fn.Code {
			in := &fn.Code[i]
			if in.Def() != r {
				continue
			}
			if def != nil {
				return false // several defs could disagree
			}
			def = in
		}
		if def == nil {
			return false
		}
		switch def.Op {
		case ir.OpConst, ir.OpConstStr:
			return true
		case ir.OpMove:
			r = def.A
		default:
			return false
		}
	}
	return false
}

// suspendPos finds the OpSuspend instruction that created the site.
func suspendPos(fn *ir.Func, site *ir.SuspendSite) source.Pos {
	at := fn.Frags[site.FragIdx].Start - 1
	if at >= 0 && at < len(fn.Code) && fn.Code[at].Op == ir.OpSuspend {
		return instrPos(fn, at)
	}
	return instrPos(fn, len(fn.Code)-1)
}

// Package liveness computes per-instruction live-register sets over the IR.
//
// This is the analysis §5 of the paper describes: "An optimization is to
// save and restore in the continuation only values that are referenced
// after the Suspend." The continuation pass uses live-in sets at fragment
// entry points to decide what a continuation record must carry.
package liveness

import "teapot/internal/ir"

// Set is a dense bitset of registers.
type Set []uint64

// NewSet returns an empty set sized for n registers.
func NewSet(n int) Set { return make(Set, (n+63)/64) }

// Has reports membership.
func (s Set) Has(r ir.Reg) bool {
	if r < 0 {
		return false
	}
	return s[int(r)/64]&(1<<(uint(r)%64)) != 0
}

// Add inserts r; it reports whether the set changed.
func (s Set) Add(r ir.Reg) bool {
	if r < 0 {
		return false
	}
	w, b := int(r)/64, uint(r)%64
	old := s[w]
	s[w] |= 1 << b
	return s[w] != old
}

// Remove deletes r.
func (s Set) Remove(r ir.Reg) {
	if r < 0 {
		return
	}
	s[int(r)/64] &^= 1 << (uint(r) % 64)
}

// Union merges o into s; it reports whether s changed.
func (s Set) Union(o Set) bool {
	changed := false
	for i := range s {
		old := s[i]
		s[i] |= o[i]
		if s[i] != old {
			changed = true
		}
	}
	return changed
}

// Clone copies the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Members returns the registers in ascending order.
func (s Set) Members() []ir.Reg {
	var out []ir.Reg
	for w, bits := range s {
		for bits != 0 {
			b := bits & -bits
			var i int
			for v := b; v > 1; v >>= 1 {
				i++
			}
			out = append(out, ir.Reg(w*64+i))
			bits &^= b
		}
	}
	return out
}

// Count returns the cardinality.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Result holds live-in sets per instruction.
type Result struct {
	LiveIn []Set
}

// Analyze computes live-in sets for every instruction of f with a standard
// backward fixed-point iteration. OpSuspend is treated as flowing into the
// fragment its resumption enters (see ir.Func.Succs), so registers used
// after a Suspend are live across it.
func Analyze(f *ir.Func) *Result {
	n := len(f.Code)
	res := &Result{LiveIn: make([]Set, n)}
	for i := range res.LiveIn {
		res.LiveIn[i] = NewSet(f.NumRegs)
	}
	var uses []ir.Reg
	var succs []int
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			in := &f.Code[i]
			// out = union of live-in of successors
			out := NewSet(f.NumRegs)
			succs = f.Succs(i, succs[:0])
			for _, s := range succs {
				out.Union(res.LiveIn[s])
			}
			// in = uses ∪ (out − def)
			if d := in.Def(); d != ir.NoReg {
				out.Remove(d)
			}
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				out.Add(u)
			}
			if res.LiveIn[i].Union(out) {
				changed = true
			}
		}
	}
	return res
}

// LiveAt returns the live-in set at an instruction index (nil-safe).
func (r *Result) LiveAt(i int) Set {
	if r == nil || i < 0 || i >= len(r.LiveIn) {
		return nil
	}
	return r.LiveIn[i]
}

// Package token defines the lexical tokens of the Teapot language
// (PLDI '96, Appendix A). Keywords are case-insensitive because the paper's
// examples freely mix "Begin"/"begin", "If"/"if", "Suspend"/"suspend".
package token

import "strings"

// Kind identifies a lexical token class.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT  // Cache_ReadOnly, home, GET_RO_REQ
	INT    // 42
	STRING // "Invalid msg %s to Cache_RO"

	// Punctuation.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	SEMICOLON // ;
	COLON     // :
	COMMA     // ,
	DOT       // .
	ASSIGN    // :=

	// Operators (the grammar's sym-id binary operators).
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	EQ      // =  (equality in Teapot, Pascal-style)
	NEQ     // <> or !=
	LT      // <
	LE      // <=
	GT      // >
	GE      // >=
	AND     // &&  (also keyword 'and')
	OR      // ||  (also keyword 'or')
	NOT     // !   (also keyword 'not')

	keywordStart
	MODULE
	BEGIN
	END
	TYPE
	CONST
	FUNCTION
	PROCEDURE
	PROTOCOL
	VAR
	STATE
	TRANSIENT
	MESSAGE
	IF
	THEN
	ELSE
	ENDIF
	WHILE
	DO
	SUSPEND
	RESUME
	RETURN
	PRINT
	KWAND // and
	KWOR  // or
	KWNOT // not
	TRUE
	FALSE
	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	IDENT:     "IDENT",
	INT:       "INT",
	STRING:    "STRING",
	LPAREN:    "(",
	RPAREN:    ")",
	LBRACE:    "{",
	RBRACE:    "}",
	SEMICOLON: ";",
	COLON:     ":",
	COMMA:     ",",
	DOT:       ".",
	ASSIGN:    ":=",
	PLUS:      "+",
	MINUS:     "-",
	STAR:      "*",
	SLASH:     "/",
	PERCENT:   "%",
	EQ:        "=",
	NEQ:       "<>",
	LT:        "<",
	LE:        "<=",
	GT:        ">",
	GE:        ">=",
	AND:       "&&",
	OR:        "||",
	NOT:       "!",
	MODULE:    "module",
	BEGIN:     "begin",
	END:       "end",
	TYPE:      "type",
	CONST:     "const",
	FUNCTION:  "function",
	PROCEDURE: "procedure",
	PROTOCOL:  "protocol",
	VAR:       "var",
	STATE:     "state",
	TRANSIENT: "transient",
	MESSAGE:   "message",
	IF:        "if",
	THEN:      "then",
	ELSE:      "else",
	ENDIF:     "endif",
	WHILE:     "while",
	DO:        "do",
	SUSPEND:   "suspend",
	RESUME:    "resume",
	RETURN:    "return",
	PRINT:     "print",
	KWAND:     "and",
	KWOR:      "or",
	KWNOT:     "not",
	TRUE:      "true",
	FALSE:     "false",
}

// String returns the canonical spelling of the token kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return "UNKNOWN"
}

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordStart + 1; k < keywordEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or IDENT.
// Keyword recognition is case-insensitive.
func Lookup(ident string) Kind {
	if k, ok := keywords[strings.ToLower(ident)]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordStart && k < keywordEnd }

// Precedence returns the binary-operator precedence (higher binds tighter),
// or 0 if the kind is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case OR, KWOR:
		return 1
	case AND, KWAND:
		return 2
	case EQ, NEQ, LT, LE, GT, GE:
		return 3
	case PLUS, MINUS:
		return 4
	case STAR, SLASH, PERCENT:
		return 5
	}
	return 0
}

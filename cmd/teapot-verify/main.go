// Teapot-verify model-checks a bundled protocol by exhaustive state-space
// exploration (§7 of the paper), reporting the number of states explored
// and, on a violation, the event trace leading to it.
//
// Usage:
//
//	teapot-verify -proto stache -nodes 2 -blocks 1 -net reorder=1
//	teapot-verify -proto stache -net drop=1       # found: lost-message stall
//	teapot-verify -proto stache-ft -net drop=1,dup=1
//	teapot-verify -proto stache-buggy             # finds the seeded deadlock
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"teapot/internal/cliflags"
	"teapot/internal/manifest"
	"teapot/internal/mc"
	"teapot/internal/obs"
	"teapot/internal/runtime"
)

func main() {
	run := cliflags.AddRun(flag.CommandLine, "stache", 2, 1)
	var (
		maxState = flag.Int("max-states", 0, "abort after exploring this many states (0 = unlimited)")
		symmetry = flag.String("symmetry", "auto", "symmetry reduction: auto (reduce when the static certificate and support vouches allow) | off | on (fail unless reduction is possible)")
		progress = flag.String("progress", "auto", "live per-layer progress on stderr: auto (only when stderr is a terminal) | always | never")
		stats    = flag.Bool("stats", false, "print a final exploration stats block")
		jsonOut  = flag.Bool("json", false, "write the run manifest as JSON to stdout instead of the plain-text report")
		report   = cliflags.AddReport(flag.CommandLine)
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file after the run")

		// Deprecated aliases, kept one release: -protocol for -proto and
		// -reorder for -net reorder=N.
		dep = cliflags.AddDeprecated(flag.CommandLine)
	)
	flag.Parse()

	dep.Apply(run)
	// Historical default: with no network flags at all, verify under
	// "1 reordering max" (the paper's configuration).
	given := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { given[f.Name] = true })
	if !given["net"] && !given["reorder"] {
		run.Net.Model.Reorder = 1
	}

	spec, err := run.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, "teapot-verify:", err)
		os.Exit(1)
	}
	spec.MaxStates = *maxState
	spec.Symmetry, err = mc.ParseSymmetryMode(*symmetry)
	if err != nil {
		fmt.Fprintln(os.Stderr, cliflags.BadFlag("teapot-verify", "symmetry", *symmetry, "auto, off, or on"))
		os.Exit(1)
	}

	switch *progress {
	case "always", "auto", "never":
	default:
		fmt.Fprintf(os.Stderr, "teapot-verify: -progress must be auto, always, or never (got %q)\n", *progress)
		os.Exit(1)
	}
	if *progress == "always" || (*progress == "auto" && stderrIsTerminal()) {
		pw := &mc.ProgressWriter{W: os.Stderr}
		spec.Progress = pw.Report
	}

	// Manifest plumbing: accumulate coverage during exploration and keep the
	// final progress snapshot (the only carrier of shard balance).
	wantManifest := *jsonOut || *report != ""
	var cov *obs.Coverage
	var lastProg mc.ProgressInfo
	if wantManifest {
		cov = obs.NewCoverage()
		prev := spec.Progress
		spec.Progress = func(p mc.ProgressInfo) {
			lastProg = p
			if prev != nil {
				prev(p)
			}
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
	}

	cfg := spec.MCConfig()
	cfg.Coverage = cov
	res, err := mc.Check(cfg)
	if *cpuProf != "" {
		// Stopped explicitly: the violation path exits with a nonzero
		// status, which would skip a deferred stop.
		pprof.StopCPUProfile()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "teapot-verify:", err)
		os.Exit(1)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
		f.Close()
	}

	if wantManifest {
		man := &manifest.Manifest{
			ManifestVersion: manifest.Version,
			Tool:            "teapot-verify",
			Protocol:        *run.Proto,
			Nodes:           *run.Nodes,
			Blocks:          *run.Blocks,
			Net:             spec.Net.String(),
			Coverage:        cov.Report(runtime.ObsNames(spec.Proto)),
			MC:              mcStats(res, lastProg),
		}
		if res.Violation != nil && len(res.Violation.Steps) > 0 {
			// Replay the counterexample with a flight recorder attached so
			// the manifest (and stderr) carry the event tail leading into
			// the violation.
			fr := obs.NewFlightRecorder(0)
			rcfg := spec.MCConfig()
			rcfg.Obs = fr
			if rerr := mc.ReplaySteps(rcfg, res.Violation.Steps, nil); rerr != nil {
				fmt.Fprintln(os.Stderr, "teapot-verify: flight-recorder replay:", rerr)
			} else {
				man.FlightRecorder = fr.TailLines(0, runtime.ObsNames(spec.Proto))
				fmt.Fprintln(os.Stderr, "flight recorder (counterexample tail):")
				for _, l := range man.FlightRecorder {
					fmt.Fprintln(os.Stderr, "  "+l)
				}
			}
		}
		if *report != "" {
			if err := manifest.Write(*report, man); err != nil {
				fmt.Fprintln(os.Stderr, "teapot-verify:", err)
				os.Exit(1)
			}
		}
		if *jsonOut {
			data, err := man.Encode()
			if err != nil {
				fmt.Fprintln(os.Stderr, "teapot-verify:", err)
				os.Exit(1)
			}
			os.Stdout.Write(data)
			if res.Violation != nil {
				os.Exit(2)
			}
			return
		}
	}

	net := ""
	if s := spec.Net.String(); s != "" {
		net = fmt.Sprintf(", net %s", s)
	}
	sym := ""
	if res.SymmetryGroup > 1 {
		sym = fmt.Sprintf(", symmetry /%d", res.SymmetryGroup)
	}
	fmt.Printf("protocol %s: %d states, %d transitions, depth %d, %d workers%s%s, %s\n",
		*run.Proto, res.States, res.Transitions, res.MaxDepth, res.Workers, net, sym, res.Elapsed)
	if res.SymmetryNote != "" {
		fmt.Printf("  symmetry reduction off: %s\n", res.SymmetryNote)
	}
	if *stats {
		rate := 0.0
		if s := res.Elapsed.Seconds(); s > 0 {
			rate = float64(res.States) / s
		}
		dedup := 0.0
		if res.States > 0 {
			dedup = float64(res.Transitions) / float64(res.States)
		}
		fmt.Printf("  peak frontier:  %d states\n", res.PeakFrontier)
		fmt.Printf("  decodes:        %d (one per expanded state)\n", res.Decodes)
		fmt.Printf("  visited set:    %s\n", mc.FormatBytes(res.VisitedBytes))
		fmt.Printf("  rate:           %.0f states/s\n", rate)
		fmt.Printf("  dedup ratio:    %.2f transitions/state\n", dedup)
		fmt.Printf("  symmetry group: %d\n", res.SymmetryGroup)
	}
	if res.Violation == nil {
		fmt.Println("verified: no deadlock, no unexpected messages, coherence holds")
		return
	}
	fmt.Printf("VIOLATION %s\n", res.Violation)
	os.Exit(2)
}

// mcStats lowers a checker result (plus the final progress snapshot, the
// only carrier of shard balance) into manifest form.
func mcStats(res *mc.Result, last mc.ProgressInfo) *manifest.MCStats {
	st := &manifest.MCStats{
		States:        res.States,
		Transitions:   res.Transitions,
		MaxDepth:      res.MaxDepth,
		Workers:       res.Workers,
		ElapsedSec:    res.Elapsed.Seconds(),
		PeakFrontier:  res.PeakFrontier,
		Decodes:       res.Decodes,
		VisitedBytes:  res.VisitedBytes,
		ShardMin:      last.ShardMin,
		ShardMax:      last.ShardMax,
		SymmetryGroup: res.SymmetryGroup,
		SymmetryNote:  res.SymmetryNote,
		Violation:     manifestViolation(res.Violation),
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		st.StatesPerSec = float64(res.States) / s
	}
	if res.States > 0 {
		st.BytesPerState = float64(res.VisitedBytes) / float64(res.States)
		st.DedupRatio = float64(res.Transitions) / float64(res.States)
	}
	return st
}

// manifestViolation converts a checker counterexample into manifest form.
func manifestViolation(v *mc.Violation) *manifest.Violation {
	if v == nil {
		return nil
	}
	mv := &manifest.Violation{Kind: v.Kind, Msg: v.Msg, Trace: v.Trace}
	for _, s := range v.Steps {
		mv.Steps = append(mv.Steps, manifest.Step{
			Kind: s.Kind, From: s.From, To: s.To, Idx: s.Idx,
			Node: s.Node, Block: s.Block, Event: s.Event, Msg: s.Msg,
		})
	}
	return mv
}

// stderrIsTerminal reports whether stderr is attached to a character
// device. The -progress auto gate: live lines are for humans watching a
// terminal, not for logs captured by redirection or CI.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

package sema

// Builtin identifies the intrinsic operations the Teapot runtime provides.
// These correspond to the Tempest mechanisms the paper's protocols call
// (Send, SetState, AccessChange, Enqueue, ...). Support modules may declare
// additional routines; those are bound to Go implementations at runtime.
type Builtin int

// Builtins.
const (
	BNone         Builtin = iota
	BSend                 // Send(dst NODE, tag MSG, id ID, payload...)
	BSendData             // SendData(dst NODE, tag MSG, id ID, payload...) — carries block data
	BSetState             // SetState(var info INFO, s STATE)
	BEnqueue              // Enqueue(...) — defer the current message until the next transition
	BNack                 // Nack() — negatively acknowledge the current message
	BDrop                 // Drop() — discard the current message
	BError                // Error(fmt string, args...) — unexpected message / protocol bug
	BWakeUp               // WakeUp(id ID) — unstall the faulting processor
	BAccessChange         // AccessChange(id ID, a ACCESS)
	BRecvData             // RecvData(id ID, a ACCESS) — install current message's data
	BMyNode               // MyNode() : NODE
	BHomeNode             // HomeNode(id ID) : NODE
	BMsgToStr             // Msg_To_Str(tag MSG) : string
	BMessageTag           // MessageTag : MSG (value builtin)
	BMessageSrc           // MessageSrc : NODE (value builtin; sender of current message)
)

// builtinFuncs is the always-available routine set.
var builtinFuncs = []*FuncSym{
	{Name: "Send", Sig: vsig(Invalid, Node, Msg, ID), Builtin: BSend},
	{Name: "SendData", Sig: vsig(Invalid, Node, Msg, ID), Builtin: BSendData},
	{Name: "SetState", Sig: sig(Invalid, Info, State).withRef(0), Builtin: BSetState},
	{Name: "Enqueue", Sig: vsig(Invalid), Builtin: BEnqueue},
	{Name: "Nack", Sig: sig(Invalid), Builtin: BNack},
	{Name: "Drop", Sig: sig(Invalid), Builtin: BDrop},
	{Name: "Error", Sig: vsig(Invalid, String), Builtin: BError},
	{Name: "WakeUp", Sig: sig(Invalid, ID), Builtin: BWakeUp},
	{Name: "AccessChange", Sig: sig(Invalid, ID, Access), Builtin: BAccessChange},
	{Name: "RecvData", Sig: sig(Invalid, ID, Access), Builtin: BRecvData},
	{Name: "MyNode", Sig: sig(Node), Builtin: BMyNode},
	{Name: "HomeNode", Sig: sig(Node, ID), Builtin: BHomeNode},
	{Name: "Msg_To_Str", Sig: sig(String, Msg), Builtin: BMsgToStr},
}

// AccessMode is the Tempest fine-grain access-control mode for a block.
type AccessMode int

// Access modes and change operations. The *_change* values (upgrade and
// downgrade) are directional aliases used by the paper's protocols.
const (
	AccInvalid   AccessMode = iota // no access; loads and stores fault
	AccReadOnly                    // loads succeed; stores fault
	AccReadWrite                   // full access
	AccBuffered                    // stores complete into a write buffer; loads fault
)

func (a AccessMode) String() string {
	switch a {
	case AccInvalid:
		return "Invalid"
	case AccReadOnly:
		return "ReadOnly"
	case AccReadWrite:
		return "ReadWrite"
	case AccBuffered:
		return "Buffered"
	}
	return "?"
}

// builtinAccessConsts maps the access-change constant names the paper's
// protocols use to target access modes.
var builtinAccessConsts = map[string]AccessMode{
	"Blk_Invalidate":   AccInvalid,
	"Blk_ReadOnly":     AccReadOnly,
	"Blk_ReadWrite":    AccReadWrite,
	"Blk_Upgrade_RW":   AccReadWrite,
	"Blk_Downgrade_RO": AccReadOnly,
	"Blk_Buffered":     AccBuffered,
}

// builtinValues are nullary value builtins usable in expressions.
var builtinValues = map[string]struct {
	Type    Type
	Builtin Builtin
}{
	"MessageTag": {Msg, BMessageTag},
	"MessageSrc": {Node, BMessageSrc},
}

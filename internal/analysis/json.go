package analysis

import (
	"bytes"
	"encoding/json"
)

// Machine-readable vet output (teapot-vet -json). CI and the model
// checker's certificate loader share this one format: the findings list
// mirrors the human report line for line, and the symmetry certificate is
// embedded verbatim so a consumer never re-derives it from prose.

// JSONFinding is one diagnostic in machine-readable form.
type JSONFinding struct {
	Check    string `json:"check"`    // stable pass ID, e.g. "vet:coverage"
	Severity string `json:"severity"` // "error" | "warning" | "info"
	File     string `json:"file"`
	Line     int    `json:"line"` // 1-based; 0 when the finding has no position
	Col      int    `json:"col"`
	Msg      string `json:"msg"`
}

// JSONReport is the machine-readable vet report for one protocol.
type JSONReport struct {
	Protocol string        `json:"protocol"`
	Findings []JSONFinding `json:"findings"`
	Symmetry *SymmetryCert `json:"symmetry,omitempty"`
}

// JSON converts the report (already sorted by Run) for one protocol,
// attaching the symmetry certificate when provided.
func (r *Report) JSON(protocol string, cert *SymmetryCert) *JSONReport {
	out := &JSONReport{
		Protocol: protocol,
		Findings: make([]JSONFinding, 0, len(r.Findings)),
		Symmetry: cert,
	}
	for _, d := range r.Findings {
		out.Findings = append(out.Findings, JSONFinding{
			Check:    d.Check,
			Severity: d.Severity.String(),
			File:     d.File,
			Line:     d.Pos.Line,
			Col:      d.Pos.Col,
			Msg:      d.Msg,
		})
	}
	return out
}

// MarshalJSONReports renders a deterministic, indented JSON array of
// per-protocol reports (the exact bytes teapot-vet -json prints). HTML
// escaping is off: IR witnesses quote instructions like "r4 := r2 < r3"
// and must survive a round trip readably.
func MarshalJSONReports(reports []*JSONReport) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

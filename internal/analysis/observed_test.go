package analysis_test

import (
	"sort"
	"strings"
	"testing"

	"teapot/internal/analysis"
	"teapot/internal/mc"
	"teapot/internal/obs"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
)

func TestExpectedDispatchShape(t *testing.T) {
	p := stache.MustCompile(true).Protocol
	exp := analysis.ExpectedDispatch(p)
	if len(exp) == 0 {
		t.Fatal("empty dispatch universe for stache")
	}
	if !sort.StringsAreSorted(exp) {
		t.Error("ExpectedDispatch not sorted")
	}
	seen := map[string]bool{}
	for _, pair := range exp {
		if seen[pair] {
			t.Errorf("duplicate pair %s", pair)
		}
		seen[pair] = true
		if !strings.Contains(pair, ".") {
			t.Errorf("pair %q not in State.MESSAGE form", pair)
		}
	}
	// A pair any run of the protocol exercises must be in the universe.
	if !seen["Home_Idle.GET_RO_REQ"] {
		t.Errorf("Home_Idle.GET_RO_REQ missing from %d-pair universe", len(exp))
	}
	// TIMEOUT is a message like any other: base stache declares no TIMEOUT
	// handlers, so no pair may claim one.
	for _, pair := range exp {
		if strings.HasSuffix(pair, ".TIMEOUT") {
			t.Errorf("base stache has no TIMEOUT handlers, universe claims %s", pair)
		}
	}
}

func TestExpectedDispatchFTHasTimeouts(t *testing.T) {
	p := stache.MustCompileFT(true).Protocol
	var timeouts int
	for _, pair := range analysis.ExpectedDispatch(p) {
		if strings.HasSuffix(pair, ".TIMEOUT") {
			timeouts++
		}
	}
	if timeouts == 0 {
		t.Error("fault-tolerant stache declares TIMEOUT handlers; universe has none")
	}
}

func TestCoverageGaps(t *testing.T) {
	p := stache.MustCompile(true).Protocol
	exp := analysis.ExpectedDispatch(p)
	full := map[string]uint64{}
	for _, pair := range exp {
		full[pair] = 1
	}
	if gaps := analysis.CoverageGaps(p, full); len(gaps) != 0 {
		t.Errorf("full coverage still gaps: %v", gaps)
	}
	partial := map[string]uint64{}
	for _, pair := range exp[1:] {
		partial[pair] = 1
	}
	if gaps := analysis.CoverageGaps(p, partial); len(gaps) != 1 || gaps[0] != exp[0] {
		t.Errorf("CoverageGaps = %v, want [%s]", gaps, exp[0])
	}
}

// TestExhaustiveCoverageMeetsStatic is the single-source property made
// measurable: on base stache at 3x1 reorder=1 — the smallest shape where
// cache-vs-cache contention makes every handler's trigger dynamically
// reachable except the home-side processor-fault handlers whose fault kind
// the home's own access mode precludes — exhaustive exploration must
// dispatch exactly the statically reachable universe minus that known,
// named remainder.
func TestExhaustiveCoverageMeetsStatic(t *testing.T) {
	p := stache.MustCompile(true).Protocol
	cov := obs.NewCoverage()
	cfg := mc.Config{
		Proto: p, Support: stache.MustSupport(p),
		Nodes: 3, Blocks: 1, Reorder: 1,
		Events: stache.NewEvents(p), CheckCoherence: true,
		Coverage: cov,
	}
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("clean protocol violated: %v", res.Violation)
	}
	rep := cov.Report(runtime.ObsNames(p))
	gaps := analysis.CoverageGaps(p, rep.Dispatch)
	// The documented remainder: in Home_Idle/Home_RS the home holds at
	// least read access (RD_FAULT cannot fire; WR_FAULT only from invalid),
	// and in Home_Excl the home's copy is invalid (WR_RO_FAULT needs a
	// read-only copy). Defensive handlers exist for all three fault kinds
	// in each state; the precluded ones are the allowed gap set.
	allowed := map[string]bool{
		"Home_Excl.WR_RO_FAULT": true,
		"Home_Idle.RD_FAULT":    true,
		"Home_Idle.WR_FAULT":    true,
		"Home_Idle.WR_RO_FAULT": true,
		"Home_RS.RD_FAULT":      true,
		"Home_RS.WR_FAULT":      true,
	}
	for _, g := range gaps {
		if !allowed[g] {
			t.Errorf("statically reachable pair %s never dispatched by exhaustive mc", g)
		}
	}
}

// Package tempest is a deterministic discrete-event simulation of a
// Tempest-style multiprocessor (Hill, Larus & Wood; the substrate Blizzard
// implements on the CM-5): N nodes, fine-grain access control on shared
// blocks, a message-passing network with configurable latency, and
// user-level protocol handlers that execute on the faulting/receiving node
// and charge cycles according to a cost model.
//
// The paper evaluated Teapot on Blizzard-E and on "a detailed architectural
// simulator of a multiprocessor that implements the Tempest interface";
// this package plays the role of the latter. All execution is deterministic
// (no wall-clock, no map iteration), so benchmark results are reproducible
// bit-for-bit.
package tempest

import (
	"container/heap"
	"fmt"

	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/runtime"
	"teapot/internal/sema"
)

// CostCounters are the abstract work counters an engine reports; the cost
// model converts deltas into cycles.
type CostCounters struct {
	Instrs       int64 // protocol "statements" executed
	Handlers     int64 // handler activations
	HeapConts    int64 // dynamically allocated continuation records
	StaticConts  int64 // statically allocated continuation records
	Resumes      int64 // indirect resumes
	ConstResumes int64 // direct (inlined) resumes
	QueueRecords int64 // deferred-queue records
	Sends        int64 // messages sent
	Calls        int64 // support-routine invocations
}

// Sub returns c - o.
func (c CostCounters) Sub(o CostCounters) CostCounters {
	return CostCounters{
		Instrs:       c.Instrs - o.Instrs,
		Handlers:     c.Handlers - o.Handlers,
		HeapConts:    c.HeapConts - o.HeapConts,
		StaticConts:  c.StaticConts - o.StaticConts,
		Resumes:      c.Resumes - o.Resumes,
		ConstResumes: c.ConstResumes - o.ConstResumes,
		QueueRecords: c.QueueRecords - o.QueueRecords,
		Sends:        c.Sends - o.Sends,
		Calls:        c.Calls - o.Calls,
	}
}

// Add returns c + o.
func (c CostCounters) Add(o CostCounters) CostCounters {
	return c.Sub(CostCounters{}.Sub(o))
}

// CostModel converts counter deltas into cycles. The absolute values are a
// documented fiction; what matters for Tables 1–2 is that hand-written and
// Teapot protocols share every term except the ones Teapot actually adds
// (interpretive dispatch, continuation records, resume indirection).
type CostModel struct {
	MemAccess    int64 // satisfied load/store
	FaultTrap    int64 // access-fault trap + protocol entry
	Dispatch     int64 // handler dispatch (table lookup, argument setup)
	PerInstr     int64 // per protocol statement
	HeapCont     int64 // allocate+free one heap continuation record
	StaticCont   int64 // initialize a static continuation record
	Resume       int64 // indirect resume (function pointer + restore)
	ConstResume  int64 // inlined resume
	QueueRecord  int64 // allocate+free one deferred-queue record
	SendOverhead int64 // per message send
	SupportCall  int64 // per support-routine invocation (call overhead)
	NetLatency   int64 // network transit time
	// TimeoutInterval is how long a block sits in a TIMEOUT-handling state
	// before the timer fires (0 = 10 × NetLatency: long enough that a
	// round-trip on a healthy network always beats it).
	TimeoutInterval int64
}

// DefaultCost is calibrated so protocol processing is a minority of run
// time (as on real hardware) and the Teapot-vs-C deltas land in the
// paper's observed 2–15% range.
var DefaultCost = CostModel{
	MemAccess:    1,
	FaultTrap:    100,
	Dispatch:     30,
	PerInstr:     4,
	HeapCont:     60,
	StaticCont:   6,
	Resume:       24,
	ConstResume:  4,
	QueueRecord:  40,
	SendOverhead: 40,
	SupportCall:  10,
	NetLatency:   120,

	TimeoutInterval: 1200,
}

// Cycles converts a counter delta into cycles.
func (cm CostModel) Cycles(d CostCounters) int64 {
	return d.Handlers*cm.Dispatch +
		d.Instrs*cm.PerInstr +
		d.HeapConts*cm.HeapCont +
		d.StaticConts*cm.StaticCont +
		d.Resumes*cm.Resume +
		d.ConstResumes*cm.ConstResume +
		d.QueueRecords*cm.QueueRecord +
		d.Sends*cm.SendOverhead +
		d.Calls*cm.SupportCall
}

// Engine is a per-machine protocol engine: one instance manages all nodes
// (the adapter routes per-node state internally). Both the Teapot runtime
// adapter and hand-written baseline engines implement it.
type Engine interface {
	// Deliver a network message to node dst.
	Deliver(dst int, m *runtime.Message) error
	// Event injects a locally generated protocol event at a node.
	Event(node int, tag int, id int) error
	// Counters reports cumulative per-node work counters.
	Counters(node int) CostCounters
}

// EventTags names the protocol events the machine raises; resolve with
// ResolveTags. Unsupported events are -1.
type EventTags struct {
	ReadFault  int // access Invalid, load
	WriteFault int // access Invalid, store
	WriteRO    int // access ReadOnly, store
	Evict      int
	Sync       int // buffered-write synchronization
	BeginPhase int // LCM phase entry
	EndPhase   int // LCM phase exit
	Timeout    int // TIMEOUT pseudo-message (fault-tolerant protocols)
}

// ResolveTags resolves the conventional event names on a protocol.
func ResolveTags(p *runtime.Protocol) EventTags {
	return EventTags{
		ReadFault:  p.MsgIndex("RD_FAULT"),
		WriteFault: p.MsgIndex("WR_FAULT"),
		WriteRO:    p.MsgIndex("WR_RO_FAULT"),
		Evict:      p.MsgIndex("EVICT"),
		Sync:       p.MsgIndex("SYNC"),
		BeginPhase: p.MsgIndex("BEGIN_LCM_EV"),
		EndPhase:   p.MsgIndex("END_LCM_EV"),
		Timeout:    p.MsgIndex("TIMEOUT"),
	}
}

// OpKind classifies workload operations.
type OpKind int

// Workload operations.
const (
	OpCompute    OpKind = iota // local computation for Cycles cycles
	OpRead                     // shared-memory load
	OpWrite                    // shared-memory store
	OpEvict                    // voluntary eviction of a clean copy
	OpSync                     // synchronization point (buffered-write)
	OpBeginPhase               // LCM phase entry
	OpEndPhase                 // LCM phase exit
	OpBarrier                  // application barrier (all nodes rendezvous)
	OpCAS                      // atomic compare-and-swap (litmus workloads)
	// OpYield advances the node clock by Cycles like Compute, then yields
	// to the event queue, so deliveries timestamped before the node's new
	// time run first. Compute deliberately does not yield (the processor
	// model executes straight-line code without re-synchronizing against
	// the network); litmus jitter uses Yield so phase-shifting a script
	// actually reorders its accesses against in-flight protocol traffic.
	OpYield
)

// Op is one workload operation.
type Op struct {
	Kind   OpKind
	Addr   int   // block, for Read/Write/Evict/CAS
	Cycles int64 // for Compute
	// Val is the value a Write or CAS stores (litmus workloads; 0 = the
	// plain version model, where a store is just "a fresh version").
	Val int64
	// Expect is the value a CAS requires the block to hold for its store
	// to take effect. The observed value is recorded either way.
	Expect int64
}

// Program supplies each node's operation stream.
type Program interface {
	// Next returns the node's next operation; ok=false when finished.
	Next(node int) (op Op, ok bool)
}

// Config assembles a machine.
type Config struct {
	Nodes   int
	Blocks  int
	HomeOf  func(id int) int // default id % Nodes
	Cost    CostModel
	Tags    EventTags
	Engine  Engine
	Program Program
	// MaxEvents bounds the simulation (safety net; 0 = default 100M).
	MaxEvents int64

	// Net is the network fault model: faults are injected stochastically at
	// send time from a deterministic RNG seeded with Seed, so two runs with
	// the same Config produce bit-identical Stats. Protocols without TIMEOUT
	// recovery will deadlock (reported, not hung) if a message they depend
	// on is dropped.
	Net  netmodel.Model
	Seed uint64

	// Sched, when set, takes over every nondeterministic decision (fault
	// injection, bounded channel reordering, same-cycle event order) from
	// the seeded RNG; see ChoiceKind. The fuzzer records and replays these
	// decisions as Schedules.
	Sched Chooser

	// ObsMemory turns on the data-version model: completed accesses and
	// data movement are emitted as obs events (KindAccess/Data/Read/Write)
	// for the coherence oracle. Off by default — large workloads emit one
	// event per access.
	ObsMemory bool

	// InitMem gives blocks initial values under ObsMemory (litmus
	// workloads): InitMem[b] is installed as version 0 of block b in every
	// node's copy, so a read that completes before any store observes it.
	// Values must fit 32 bits (see PackVal).
	InitMem []int64
}

// Stats summarizes a run.
type Stats struct {
	Cycles     int64 // execution time = max node completion time
	NodeCycles []int64
	FaultTime  int64 // total cycles processors spent stalled on faults
	Protocol   CostCounters
	ProtoTime  int64 // cycles charged to protocol processing
	Accesses   int64
	Faults     int64
	Messages   int64

	// Fault-injection outcomes (zero without an active Config.Net).
	Drops    int64 // messages lost by the network
	Dups     int64 // messages duplicated by the network
	Delays   int64 // messages held back Delay extra latencies
	Timeouts int64 // TIMEOUT pseudo-messages fired
}

// Machine is the simulated multiprocessor.
type Machine struct {
	cfg   Config
	now   int64
	queue eventQueue
	seq   int64

	nodeTime   []int64
	stalledOn  []int // block or -1
	stallStart []int64
	finished   []bool
	pendingOp  []*Op // op being retried after a fault
	access     []sema.AccessMode
	last       []CostCounters // per node, last counter snapshot

	atBarrier []bool
	nBarrier  int

	// Fault injection and timers. timerGen[node*Blocks+block] is bumped on
	// every arm/cancel; a timer event fires only if its generation is still
	// current, which makes cancellation O(1) without queue surgery.
	inj      *netmodel.Injector
	timerGen []int64
	obs      obs.Sink

	// Schedule control (Config.Sched): per-channel in-flight counts and
	// held-back deliveries for the bounded-reorder choice.
	sched    Chooser
	inflight []int
	held     [][]heldMsg

	// Data-version model (Config.ObsMemory): mem is each node's copy of
	// each block (as a version number), version the latest committed
	// version per block.
	mem     []int64
	version []int64

	stats Stats
	err   error
}

// event is a scheduled occurrence.
type event struct {
	at    int64
	seq   int64 // tie-breaker for determinism
	kind  int   // 0 = message delivery, 1 = processor step, 2 = block timer
	node  int
	msg   *runtime.Message
	block int   // for timers
	gen   int64 // timer generation at arm time
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Now returns the machine's current virtual time in cycles. Event sinks
// use it as a clock so trace timestamps line up with the cost model.
func (m *Machine) Now() int64 { return m.now }

// New builds a machine.
func New(cfg Config) *Machine {
	if cfg.HomeOf == nil {
		nodes := cfg.Nodes
		cfg.HomeOf = func(id int) int { return id % nodes }
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 100_000_000
	}
	if cfg.Cost.TimeoutInterval == 0 {
		cfg.Cost.TimeoutInterval = 10 * cfg.Cost.NetLatency
	}
	m := &Machine{
		cfg:        cfg,
		nodeTime:   make([]int64, cfg.Nodes),
		stalledOn:  make([]int, cfg.Nodes),
		stallStart: make([]int64, cfg.Nodes),
		finished:   make([]bool, cfg.Nodes),
		pendingOp:  make([]*Op, cfg.Nodes),
		access:     make([]sema.AccessMode, cfg.Nodes*cfg.Blocks),
		last:       make([]CostCounters, cfg.Nodes),
		inj:        netmodel.NewInjector(cfg.Net, cfg.Seed),
		timerGen:   make([]int64, cfg.Nodes*cfg.Blocks),
	}
	m.stats.NodeCycles = make([]int64, cfg.Nodes)
	m.atBarrier = make([]bool, cfg.Nodes)
	m.sched = cfg.Sched
	if m.sched != nil && cfg.Net.Reorder > 0 {
		m.inflight = make([]int, cfg.Nodes*cfg.Nodes)
		m.held = make([][]heldMsg, cfg.Nodes*cfg.Nodes)
	}
	if cfg.ObsMemory {
		m.mem = make([]int64, cfg.Nodes*cfg.Blocks)
		m.version = make([]int64, cfg.Blocks)
		for b, v := range cfg.InitMem {
			if b >= cfg.Blocks {
				break
			}
			for n := 0; n < cfg.Nodes; n++ {
				m.mem[n*cfg.Blocks+b] = PackVal(0, v)
			}
		}
	}
	for n := range m.stalledOn {
		m.stalledOn[n] = -1
	}
	for b := 0; b < cfg.Blocks; b++ {
		m.access[cfg.HomeOf(b)*cfg.Blocks+b] = sema.AccReadWrite
	}
	return m
}

// SetEngine installs the protocol engine (which typically needs the
// machine as its runtime.Machine, hence the two-step construction).
func (m *Machine) SetEngine(e Engine) { m.cfg.Engine = e }

// HomeNode implements runtime.Machine.
func (m *Machine) HomeNode(id int) int { return m.cfg.HomeOf(id) }

// Access returns the current access mode of (node, block).
func (m *Machine) Access(node, id int) sema.AccessMode {
	return m.access[node*m.cfg.Blocks+id]
}

// Send implements runtime.Machine: schedule delivery after the network
// latency. Channels are in-order because latency is constant and ties
// break by send sequence — unless Config.Net injects a fault: a dropped
// message is never scheduled (its obs flow arrow dangles), a duplicated one
// is scheduled twice (the copy a full latency later, so it arrives stale),
// and a delayed one is held back Delay extra latencies.
func (m *Machine) Send(from, dst int, msg *runtime.Message) {
	m.stats.Messages++
	if m.mem != nil && msg.Data && msg.ID >= 0 && msg.ID < m.cfg.Blocks {
		msg.Val = m.mem[from*m.cfg.Blocks+msg.ID]
	}
	lat := m.cfg.Cost.NetLatency
	switch m.netFault() {
	case netmodel.FaultDrop:
		m.stats.Drops++
		m.emitFault(obs.KindDrop, from, dst, msg)
		return
	case netmodel.FaultDup:
		m.stats.Dups++
		m.emitFault(obs.KindDup, from, dst, msg)
		c := *msg // payload and flow id shared: both deliveries are the same logical message
		// Same arrival time, later heap sequence: the copy lands right
		// behind the original, so duplication never reorders a channel
		// (matching the checker's fault model).
		m.trackInflight(from, dst)
		m.schedule(&event{at: m.now + lat, kind: 0, node: dst, msg: &c})
	case netmodel.FaultDelay:
		m.stats.Delays++
		m.emitFault(obs.KindDelay, from, dst, msg)
		lat += int64(m.cfg.Net.Delay) * m.cfg.Cost.NetLatency
	}
	m.trackInflight(from, dst)
	m.schedule(&event{at: m.now + lat, kind: 0, node: dst, msg: msg})
}

// trackInflight counts a scheduled delivery on its channel (schedule
// control with a reorder budget only; drops never count — they are decided
// at send time, so a held message can never wait on a lost arrival).
func (m *Machine) trackInflight(from, dst int) {
	if m.inflight != nil {
		m.inflight[m.chanIndex(from, dst)]++
	}
}

// SetObs attaches a sink for the machine's own fault events (Drop/Dup);
// handler-level events are emitted by the protocol engines.
func (m *Machine) SetObs(s obs.Sink) { m.obs = s }

func (m *Machine) emitFault(kind obs.Kind, from, dst int, msg *runtime.Message) {
	if m.obs == nil {
		return
	}
	m.obs.Emit(obs.Event{Kind: kind, Node: int32(from), Block: int32(msg.ID),
		State: -1, Msg: int32(msg.Tag), Peer: int32(dst), Site: -1, Flow: msg.Flow()})
}

// ArmTimeout implements runtime.TimeoutArmer: (re)start the block's timer.
// Superseding the generation invalidates any timer already in the queue.
func (m *Machine) ArmTimeout(node, id int) {
	if m.cfg.Tags.Timeout < 0 {
		return
	}
	slot := node*m.cfg.Blocks + id
	m.timerGen[slot]++
	m.schedule(&event{at: m.now + m.cfg.Cost.TimeoutInterval, kind: 2,
		node: node, block: id, gen: m.timerGen[slot]})
}

// CancelTimeout implements runtime.TimeoutArmer.
func (m *Machine) CancelTimeout(node, id int) {
	m.timerGen[node*m.cfg.Blocks+id]++
}

// fireTimer delivers the TIMEOUT pseudo-message for a block whose timer
// expired un-canceled. The handler runs like any delivery; the engine
// re-arms the timer if the state it lands in still declares one.
func (m *Machine) fireTimer(e *event) {
	if m.timerGen[e.node*m.cfg.Blocks+e.block] != e.gen {
		return // canceled or re-armed since
	}
	m.stats.Timeouts++
	start := m.nodeTime[e.node]
	if start < m.now {
		start = m.now
	}
	if err := m.cfg.Engine.Event(e.node, m.cfg.Tags.Timeout, e.block); err != nil {
		m.err = err
		return
	}
	m.nodeTime[e.node] = m.chargeProtocol(e.node, start)
}

// AccessChange implements runtime.Machine.
func (m *Machine) AccessChange(node, id int, mode sema.AccessMode) {
	m.setAccess(node, id, mode)
}

// RecvData implements runtime.Machine. The engine routes data deliveries
// through RecvDataMsg (runtime.DataMachine) instead, which also installs
// the transported data version; this remains for hand-written engines that
// call the machine directly.
func (m *Machine) RecvData(node, id int, mode sema.AccessMode) {
	m.setAccess(node, id, mode)
}

// WakeUp implements runtime.Machine: unstall and resume the processor.
// The access that faulted is satisfied atomically with the wakeup when the
// granted permission allows it (as on Blizzard, where the faulting access
// completes as part of fault resolution); otherwise a later recall racing
// the processor's retry could starve a contended block forever.
func (m *Machine) WakeUp(node, id int) {
	if m.stalledOn[node] != id {
		return
	}
	m.stalledOn[node] = -1
	m.stats.FaultTime += m.now - m.stallStart[node]
	if m.nodeTime[node] < m.now {
		m.nodeTime[node] = m.now
	}
	if op := m.pendingOp[node]; op != nil &&
		(op.Kind == OpRead || op.Kind == OpWrite || op.Kind == OpCAS) {
		acc := m.Access(node, op.Addr)
		// A wakeup on a faulted *write* that leaves the block read-only
		// means the protocol performed the store on the processor's
		// behalf (write-through/update protocols do exactly that in the
		// fault handler); re-faulting would retry forever. CAS gets no
		// such exception: its read-modify-write is only atomic with the
		// block held read-write, so it is unsupported on write-through
		// and buffered protocols.
		ok := accessOK(op.Kind, acc) ||
			(op.Kind == OpWrite && acc == sema.AccReadOnly)
		if ok {
			m.nodeTime[node] += m.cfg.Cost.MemAccess
			m.stats.Accesses++
			m.noteOp(node, op, op.Kind == OpWrite && acc == sema.AccReadOnly)
			m.pendingOp[node] = nil
		}
	}
	m.schedule(&event{at: m.nodeTime[node], kind: 1, node: node})
}

// Print implements runtime.Machine.
func (m *Machine) Print(node int, s string) {
	// Protocol debug output is discarded in simulation runs.
}

func (m *Machine) schedule(e *event) {
	e.seq = m.seq
	m.seq++
	heap.Push(&m.queue, e)
}

// chargeProtocol advances a node's clock by the protocol work done since
// the last snapshot.
func (m *Machine) chargeProtocol(node int, start int64) int64 {
	cur := m.cfg.Engine.Counters(node)
	delta := cur.Sub(m.last[node])
	m.last[node] = cur
	cost := m.cfg.Cost.Cycles(delta)
	m.stats.Protocol = m.stats.Protocol.Add(delta)
	m.stats.ProtoTime += cost
	return start + cost
}

// Run executes the workload to completion and returns statistics.
func (m *Machine) Run() (*Stats, error) {
	for n := 0; n < m.cfg.Nodes; n++ {
		m.schedule(&event{at: 0, kind: 1, node: n})
	}
	var events int64
	for m.queue.Len() > 0 {
		if events++; events > m.cfg.MaxEvents {
			return nil, fmt.Errorf("tempest: event budget exhausted (livelock?)")
		}
		e := heap.Pop(&m.queue).(*event)
		if m.sched != nil && m.queue.Len() > 0 && m.queue[0].at == e.at {
			e = m.pickTie(e)
		}
		m.now = e.at
		switch e.kind {
		case 0:
			m.deliver(e)
		case 2:
			m.fireTimer(e)
		default:
			m.step(e.node)
		}
		if m.err != nil {
			return nil, m.err
		}
	}
	for ch := range m.held {
		if len(m.held[ch]) > 0 {
			return nil, fmt.Errorf("tempest: internal error: %d message(s) still held on channel %d→%d",
				len(m.held[ch]), ch/m.cfg.Nodes, ch%m.cfg.Nodes)
		}
	}
	for n, stalled := range m.stalledOn {
		if stalled >= 0 {
			return nil, fmt.Errorf("tempest: node %d deadlocked on block %d", n, stalled)
		}
		if !m.finished[n] {
			status := ""
			for i := range m.finished {
				status += fmt.Sprintf(" node%d{fin=%v bar=%v stall=%d}", i, m.finished[i], m.atBarrier[i], m.stalledOn[i])
			}
			return nil, fmt.Errorf("tempest: node %d never finished (%d/%d at barrier):%s",
				n, m.nBarrier, m.cfg.Nodes, status)
		}
	}
	for n := range m.nodeTime {
		m.stats.NodeCycles[n] = m.nodeTime[n]
		if m.nodeTime[n] > m.stats.Cycles {
			m.stats.Cycles = m.nodeTime[n]
		}
	}
	return &m.stats, nil
}

// deliver runs a protocol handler for an incoming message. Handlers
// execute on the destination node and occupy its processor. Under schedule
// control with a reorder budget the arrival first passes through the
// hold/release choice (see arrive).
func (m *Machine) deliver(e *event) {
	if m.inflight != nil {
		m.arrive(e.node, e.msg)
		return
	}
	m.deliverMsg(e.node, e.msg)
}

func (m *Machine) deliverMsg(node int, msg *runtime.Message) {
	start := m.nodeTime[node]
	if start < m.now {
		start = m.now
	}
	if err := m.cfg.Engine.Deliver(node, msg); err != nil {
		m.err = err
		return
	}
	m.nodeTime[node] = m.chargeProtocol(node, start)
}

// step executes the node's next workload operation(s).
func (m *Machine) step(node int) {
	if m.stalledOn[node] >= 0 || m.finished[node] || m.atBarrier[node] {
		return
	}
	// Execute operations until the node faults or finishes. Each op
	// advances the node clock; control returns to the event loop on
	// faults (resumed by WakeUp) and at message deliveries (which the
	// event queue interleaves by time).
	for {
		var op Op
		if m.pendingOp[node] != nil {
			op = *m.pendingOp[node]
			m.pendingOp[node] = nil
		} else {
			var ok bool
			op, ok = m.cfg.Program.Next(node)
			if !ok {
				m.finished[node] = true
				return
			}
		}
		switch op.Kind {
		case OpCompute:
			m.nodeTime[node] += op.Cycles
		case OpYield:
			m.nodeTime[node] += op.Cycles
			m.schedule(&event{at: m.nodeTime[node], kind: 1, node: node})
			return
		case OpRead, OpWrite, OpCAS:
			acc := m.Access(node, op.Addr)
			if accessOK(op.Kind, acc) {
				m.stats.Accesses++
				m.nodeTime[node] += m.cfg.Cost.MemAccess
				m.noteOp(node, &op, false)
				break
			}
			// Access fault: trap, run the protocol handler, stall.
			m.stats.Faults++
			tag := m.faultTag(op.Kind, acc)
			if tag < 0 {
				m.err = fmt.Errorf("tempest: no fault event for op %v access %v", op.Kind, acc)
				return
			}
			m.nodeTime[node] += m.cfg.Cost.FaultTrap
			m.now = m.nodeTime[node]
			m.stalledOn[node] = op.Addr
			m.stallStart[node] = m.now
			m.pendingOp[node] = &op // retry after wakeup
			if err := m.cfg.Engine.Event(node, tag, op.Addr); err != nil {
				m.err = err
				return
			}
			m.nodeTime[node] = m.chargeProtocol(node, m.nodeTime[node])
			// Whether the handler woke us synchronously (in which case
			// WakeUp scheduled a continuation step) or we wait for a
			// message, this step ends here; continuing the loop as well
			// would run the processor twice.
			return
		case OpEvict:
			if m.cfg.Tags.Evict >= 0 && m.Access(node, op.Addr) == sema.AccReadOnly &&
				m.cfg.HomeOf(op.Addr) != node {
				m.fireEvent(node, m.cfg.Tags.Evict, op.Addr)
				if m.err != nil {
					return
				}
			}
		case OpSync:
			if m.cfg.Tags.Sync < 0 {
				break
			}
			// Synchronization point: raise SYNC on every block in turn
			// (op.Addr carries resume progress). A protocol with pending
			// buffered acquisitions keeps the processor stalled until the
			// block's handler wakes it; then the sweep continues.
			done := true
			for b := op.Addr; b < m.cfg.Blocks; b++ {
				m.now = m.nodeTime[node]
				m.stalledOn[node] = b
				m.stallStart[node] = m.now
				if err := m.cfg.Engine.Event(node, m.cfg.Tags.Sync, b); err != nil {
					m.err = err
					return
				}
				m.nodeTime[node] = m.chargeProtocol(node, m.nodeTime[node])
				if m.stalledOn[node] >= 0 {
					cont := op
					cont.Addr = b + 1
					m.pendingOp[node] = &cont
					done = false
					break
				}
			}
			if !done {
				return
			}
		case OpBarrier:
			// Application-level rendezvous: the paper's LCM and
			// buffered-write protocols assume the program synchronizes
			// phases. The last arriver releases everyone at its time.
			m.atBarrier[node] = true
			m.nBarrier++
			if m.nBarrier < m.cfg.Nodes {
				return
			}
			release := m.now
			for n, t := range m.nodeTime {
				if m.atBarrier[n] && t > release {
					release = t
				}
			}
			if m.nodeTime[node] > release {
				release = m.nodeTime[node]
			}
			m.nBarrier = 0
			for n := range m.atBarrier {
				if !m.atBarrier[n] {
					continue
				}
				m.atBarrier[n] = false
				m.nodeTime[n] = release
				if n != node {
					m.schedule(&event{at: release, kind: 1, node: n})
				}
			}
			continue
		case OpBeginPhase:
			if m.cfg.Tags.BeginPhase >= 0 {
				m.phaseEvent(node, m.cfg.Tags.BeginPhase, op.Addr)
				if m.err != nil {
					return
				}
			}
		case OpEndPhase:
			if m.cfg.Tags.EndPhase >= 0 {
				m.phaseEvent(node, m.cfg.Tags.EndPhase, op.Addr)
				if m.err != nil {
					return
				}
			}
		}
	}
}

// fireEvent injects a non-stalling protocol event for one block.
func (m *Machine) fireEvent(node, tag, addr int) {
	m.now = m.nodeTime[node]
	if err := m.cfg.Engine.Event(node, tag, addr); err != nil {
		m.err = err
		return
	}
	m.nodeTime[node] = m.chargeProtocol(node, m.nodeTime[node])
}

// phaseEvent raises an LCM phase boundary. With addr >= 0 it targets one
// block (the workload announces the blocks it will touch); addr < 0 sweeps
// every block.
func (m *Machine) phaseEvent(node, tag, addr int) {
	if addr >= 0 {
		m.fireEvent(node, tag, addr)
		return
	}
	for b := 0; b < m.cfg.Blocks; b++ {
		m.fireEvent(node, tag, b)
		if m.err != nil {
			return
		}
	}
}

// accessOK reports whether an access completes under the given mode.
// Buffered mode (weak ordering) completes stores into the write buffer.
func accessOK(kind OpKind, acc sema.AccessMode) bool {
	switch acc {
	case sema.AccReadWrite:
		return true
	case sema.AccReadOnly:
		return kind == OpRead
	case sema.AccBuffered:
		return kind == OpWrite
	}
	return false
}

func (m *Machine) faultTag(kind OpKind, acc sema.AccessMode) int {
	if kind == OpRead {
		return m.cfg.Tags.ReadFault
	}
	if acc == sema.AccReadOnly {
		return m.cfg.Tags.WriteRO
	}
	return m.cfg.Tags.WriteFault
}

package mc

import (
	"fmt"
	"sync"
	"testing"
)

// TestVisitedCommitOrder: claims commit in (parent position, action
// ordinal) order, duplicate claims keep the minimum, and committed states
// are recognized in later layers.
func TestVisitedCommitOrder(t *testing.T) {
	vt := newVisited()
	layer := []int32{vt.addRoot("root", 0)}

	vt.claim("b", 0, 2, 0)
	vt.claim("a", 0, 1, 0)
	vt.claim("a", 0, 0, 0) // duplicate from an earlier action: must win
	vt.claim("b", 0, 3, 0) // worse duplicate: must lose

	next := vt.commit(layer)
	if len(next) != 2 {
		t.Fatalf("committed %d states, want 2", len(next))
	}
	if vt.arena[next[0]].key != "a" || vt.arena[next[0]].action != 0 {
		t.Errorf("first commit = %q action %d, want \"a\" action 0",
			vt.arena[next[0]].key, vt.arena[next[0]].action)
	}
	if vt.arena[next[1]].key != "b" || vt.arena[next[1]].action != 2 {
		t.Errorf("second commit = %q action %d, want \"b\" action 2",
			vt.arena[next[1]].key, vt.arena[next[1]].action)
	}
	for _, idx := range next {
		if vt.arena[idx].parent != 0 {
			t.Errorf("parent = %d, want 0", vt.arena[idx].parent)
		}
	}

	// Next layer: re-claiming committed states is a no-op.
	vt.claim("a", 1, 0, 0)
	vt.claim("root", 0, 0, 0)
	if got := vt.commit(next); len(got) != 0 {
		t.Errorf("re-claimed committed states were committed again: %d", len(got))
	}
}

// TestVisitedFingerprintCollision forces every key onto one fingerprint:
// full-key confirmation must keep distinct states distinct.
func TestVisitedFingerprintCollision(t *testing.T) {
	vt := newVisited()
	vt.hash = func(string) uint64 { return 42 }
	layer := []int32{vt.addRoot("root", 0)}

	const n = 20
	for i := 0; i < n; i++ {
		vt.claim(fmt.Sprintf("s%02d", i), 0, int32(i), 0)
	}
	vt.claim("root", 0, 5, 0) // colliding fingerprint AND previously committed
	next := vt.commit(layer)
	if len(next) != n {
		t.Fatalf("committed %d states under total fingerprint collision, want %d", len(next), n)
	}
	for i, idx := range next {
		if want := fmt.Sprintf("s%02d", i); vt.arena[idx].key != want {
			t.Errorf("commit %d = %q, want %q", i, vt.arena[idx].key, want)
		}
	}
	// All distinct keys re-claimed: every one must be recognized.
	for i := 0; i < n; i++ {
		vt.claim(fmt.Sprintf("s%02d", i), 0, 0, 0)
	}
	if got := vt.commit(next); len(got) != 0 {
		t.Errorf("collision chain lost committed states: %d re-committed", len(got))
	}
}

// TestShardedVisitedRace hammers the table from many goroutines with
// overlapping keys — run under -race (scripts/check.sh does) — and then
// checks the merge kept the minimum claim for every key regardless of the
// interleaving.
func TestShardedVisitedRace(t *testing.T) {
	vt := newVisited()
	layer := []int32{vt.addRoot("root", 0)}

	const goroutines = 16
	const keys = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				// Every goroutine claims every key with a different
				// ordinal; the minimum (0, i) must survive.
				vt.claim(fmt.Sprintf("state-%03d", i), 0, int32(i+g), 0)
			}
		}(g)
	}
	wg.Wait()

	next := vt.commit(layer)
	if len(next) != keys {
		t.Fatalf("committed %d states, want %d", len(next), keys)
	}
	for i, idx := range next {
		rec := vt.arena[idx]
		if want := fmt.Sprintf("state-%03d", i); rec.key != want {
			t.Errorf("commit %d = %q, want %q", i, rec.key, want)
		}
		if rec.action != int32(i) {
			t.Errorf("key %q kept claim ord %d, want minimum %d", rec.key, rec.action, i)
		}
	}
}

// Custom-protocol: the paper's §3 case study (Figure 6) — extending the
// Stache protocol with a Compare&Swap primitive that executes at the
// block's home node once the block becomes Idle.
//
//	go run ./examples/custom-protocol
//
// The point of the example: with continuations, the Home_RS handler simply
// invalidates the sharers, suspends for the acknowledgements, and then
// performs the swap; a CNS_REQ that arrives in any intermediate state is
// queued automatically. The paper reports that the state-machine version
// of the same extension "needs to test for this condition at 14 different
// places".
package main

import (
	"fmt"
	"log"

	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

type loopback struct {
	engines []*runtime.Engine
	queue   []func() error
	traces  bool
	proto   *runtime.Protocol
}

func (m *loopback) Send(from, dst int, msg *runtime.Message) {
	if m.traces {
		fmt.Printf("    %s: node %d -> node %d\n",
			m.proto.Sema().Messages[msg.Tag].Name, from, dst)
	}
	e := m.engines[dst]
	m.queue = append(m.queue, func() error { return e.Deliver(msg) })
}
func (m *loopback) AccessChange(node, id int, mode sema.AccessMode) {}
func (m *loopback) RecvData(node, id int, mode sema.AccessMode)     {}
func (m *loopback) WakeUp(node, id int)                             {}
func (m *loopback) HomeNode(id int) int                             { return 0 }
func (m *loopback) Print(node int, s string)                        {}
func (m *loopback) pump() error {
	for len(m.queue) > 0 {
		next := m.queue[0]
		m.queue = m.queue[1:]
		if err := next(); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	art, err := stache.CompileCAS(true)
	if err != nil {
		log.Fatal(err)
	}
	sup, err := stache.NewCASSupport(art.Protocol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Stache + Compare&Swap: %d states (%d added), %d messages\n\n",
		len(art.Sema.States), 1, len(art.Sema.Messages))

	m := &loopback{traces: true, proto: art.Protocol}
	for n := 0; n < 4; n++ {
		m.engines = append(m.engines, runtime.NewEngine(art.Protocol, n, 1, m, sup))
	}
	event := func(node int, name string, payload ...vm.Value) {
		if err := m.engines[node].InjectEvent(art.Protocol.MsgIndex(name), 0, payload...); err != nil {
			log.Fatal(err)
		}
		if err := m.pump(); err != nil {
			log.Fatal(err)
		}
	}

	sup.Words[0] = 100
	fmt.Println("block 0's word starts at 100; nodes 1 and 2 obtain read copies:")
	event(1, "RD_FAULT")
	event(2, "RD_FAULT")
	fmt.Printf("  home state: %s\n\n", m.engines[0].Blocks[0].StateName(art.Protocol))

	fmt.Println("node 3 issues CAS(100 -> 200): the home invalidates both")
	fmt.Println("sharers, waits for their acknowledgements, becomes Idle, and")
	fmt.Println("only then performs the swap:")
	event(3, "CAS_EV", vm.IntVal(100), vm.IntVal(200))
	fmt.Printf("  word = %d, node 3 outcome = %v\n", sup.Words[0], sup.Results[[2]int{3, 0}])
	fmt.Printf("  home state: %s, sharer states: %s / %s\n\n",
		m.engines[0].Blocks[0].StateName(art.Protocol),
		m.engines[1].Blocks[0].StateName(art.Protocol),
		m.engines[2].Blocks[0].StateName(art.Protocol))

	fmt.Println("node 1 issues a failing CAS(100 -> 300) (the word is 200 now):")
	event(1, "CAS_EV", vm.IntVal(100), vm.IntVal(300))
	fmt.Printf("  word = %d, node 1 outcome = %v\n", sup.Words[0], sup.Results[[2]int{1, 0}])
}

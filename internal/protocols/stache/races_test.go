package stache

import (
	"testing"

	"teapot/internal/runtime"
	"teapot/internal/sema"
)

// These tests walk the reordering races the model checker found during
// development, step by step through the runtime, so the mechanisms have
// direct unit coverage in addition to exhaustive exploration.

// deliverOne pops a specific message (by tag name) from the pending queue
// and delivers it, simulating network reordering.
func (m *machine) deliverTag(name string) {
	m.t.Helper()
	p := m.engines[0].Proto
	tag := p.MsgIndex(name)
	for i, d := range m.queue {
		if d.msg.Tag == tag {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			if err := m.engines[d.dst].Deliver(d.msg); err != nil {
				m.t.Fatalf("deliver %s: %v", name, err)
			}
			return
		}
	}
	m.t.Fatalf("no %s in flight", name)
}

func (m *machine) inject(node int, name string, id int) {
	m.t.Helper()
	p := m.engines[node].Proto
	if err := m.engines[node].InjectEvent(p.MsgIndex(name), id); err != nil {
		m.t.Fatalf("event %s: %v", name, err)
	}
}

// TestPoisonedFill replays the coherence violation the checker found under
// reordering: an invalidation overtakes the grant it chases, so the node
// must discard the grant, return it through the handshake, and refetch.
func TestPoisonedFill(t *testing.T) {
	m := newMachine(t, 2, 1, true)
	// Node 1 read-faults; its request reaches the home.
	m.inject(1, "RD_FAULT", 0)
	m.deliverTag("GET_RO_REQ") // home grants; GET_RO_RESP now in flight
	// The home processor writes: it sends PUT_NO_DATA_REQ to node 1
	// while the grant is still in flight.
	m.inject(0, "WR_RO_FAULT", 0)
	// Reorder: the invalidation overtakes the grant.
	m.deliverTag("PUT_NO_DATA_REQ")
	if got := m.stateOf(1, 0); got != "Cache_Inv_To_RO_P" {
		t.Fatalf("node 1 = %s, want poisoned fill", got)
	}
	// The ack completes the home's write.
	m.deliverTag("PUT_NO_DATA_RESP")
	if got := m.stateOf(0, 0); got != "Home_Idle" {
		t.Fatalf("home = %s, want Home_Idle", got)
	}
	// The stale grant arrives: node 1 must NOT install it.
	m.deliverTag("GET_RO_RESP")
	if got := m.stateOf(1, 0); got != "Cache_P_Evicting" {
		t.Fatalf("node 1 = %s, want Cache_P_Evicting (grant discarded)", got)
	}
	if m.access[[2]int{1, 0}] == sema.AccReadOnly {
		t.Fatal("stale grant was installed — the coherence bug the checker found")
	}
	// Drain: handshake acked, refetch served.
	m.pump()
	if got := m.stateOf(1, 0); got != "Cache_RO" {
		t.Errorf("node 1 = %s, want Cache_RO after refetch", got)
	}
	m.checkCoherence(0)
}

// TestEvictionRefault: the processor faults on a block whose eviction
// handshake is still in flight; the fault waits for the ack and then
// re-requests.
func TestEvictionRefault(t *testing.T) {
	for _, kind := range []struct{ ev, wait, final string }{
		{"RD_FAULT", "Cache_Ev_To_RO", "Cache_RO"},
		{"WR_FAULT", "Cache_Ev_To_RW", "Cache_RW"},
	} {
		m := newMachine(t, 2, 1, true)
		m.event(1, "RD_FAULT", 0) // obtain a copy
		m.inject(1, "EVICT", 0)   // handshake starts; ack in flight
		if got := m.stateOf(1, 0); got != "Cache_RO_Evicting" {
			t.Fatalf("node 1 = %s", got)
		}
		m.inject(1, kind.ev, 0) // re-fault before the ack arrives
		if got := m.stateOf(1, 0); got != kind.wait {
			t.Fatalf("node 1 = %s, want %s", got, kind.wait)
		}
		m.pump()
		if got := m.stateOf(1, 0); got != kind.final {
			t.Errorf("%s: node 1 = %s, want %s", kind.ev, got, kind.final)
		}
		m.checkCoherence(0)
	}
}

// TestUpgradeLosesRace: a node waiting for an upgrade is invalidated; it
// answers, keeps waiting, and receives a full writable copy instead of the
// upgrade ack.
func TestUpgradeLosesRace(t *testing.T) {
	m := newMachine(t, 3, 1, true)
	m.event(1, "RD_FAULT", 0)
	m.event(2, "RD_FAULT", 0)
	// Both upgrade; deliver node 2's first so node 1 loses.
	m.inject(1, "WR_RO_FAULT", 0)
	m.inject(2, "WR_RO_FAULT", 0)
	// Home processes node 2's upgrade first.
	p := m.engines[0].Proto
	for i, d := range m.queue {
		if d.msg.Tag == p.MsgIndex("UPGRADE_REQ") && d.msg.Src == 2 {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			if err := m.engines[0].Deliver(d.msg); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	m.pump()
	// Node 2 won; node 1 was invalidated mid-upgrade but still ends RW
	// (ownership migrated to it afterwards via its queued upgrade).
	if got := m.stateOf(1, 0); got != "Cache_RW" {
		t.Errorf("node 1 = %s, want Cache_RW (served after losing the race)", got)
	}
	if got := m.stateOf(2, 0); got != "Cache_Inv" {
		t.Errorf("node 2 = %s, want Cache_Inv (recalled for node 1)", got)
	}
	m.checkCoherence(0)
}

// TestDeferredFaultRetriedInNewState: a home-side fault deferred during an
// intermediate state completes when retried after the transition (the
// stale-fault handlers).
func TestDeferredFaultRetriedInNewState(t *testing.T) {
	m := newMachine(t, 2, 1, true)
	m.event(1, "WR_FAULT", 0) // node 1 owns the block
	// The home processor reads: recall starts; while the home waits for
	// the put, deliver nothing yet.
	m.inject(0, "RD_FAULT", 0)
	if got := m.stateOf(0, 0); got != "Home_AwaitPutData" {
		t.Fatalf("home = %s", got)
	}
	// Meanwhile the home's processor... cannot fault again (stalled), but
	// node 1's put completes the recall and the home resumes to Idle.
	m.pump()
	if got := m.stateOf(0, 0); got != "Home_Idle" {
		t.Errorf("home = %s, want Home_Idle", got)
	}
	if m.woken[[2]int{0, 0}] != 1 {
		t.Errorf("home woken %d times, want 1", m.woken[[2]int{0, 0}])
	}
	m.checkCoherence(0)
}

var _ = runtime.Message{}

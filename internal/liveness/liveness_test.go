package liveness

import (
	"math/rand"
	"testing"
	"testing/quick"

	"teapot/internal/ir"
	"teapot/internal/token"
)

func TestSetOperations(t *testing.T) {
	s := NewSet(130)
	if s.Has(0) || s.Has(129) {
		t.Error("new set not empty")
	}
	if !s.Add(129) || !s.Add(0) || !s.Add(64) {
		t.Error("Add should report change")
	}
	if s.Add(64) {
		t.Error("re-Add should report no change")
	}
	if !s.Has(0) || !s.Has(64) || !s.Has(129) {
		t.Error("membership broken")
	}
	if got := s.Count(); got != 3 {
		t.Errorf("Count = %d", got)
	}
	members := s.Members()
	if len(members) != 3 || members[0] != 0 || members[1] != 64 || members[2] != 129 {
		t.Errorf("Members = %v", members)
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Remove broken")
	}
	// NoReg is ignored.
	if s.Add(ir.NoReg) || s.Has(ir.NoReg) {
		t.Error("NoReg should be ignored")
	}
	c := s.Clone()
	c.Add(5)
	if s.Has(5) {
		t.Error("Clone aliases the original")
	}
	o := NewSet(130)
	o.Add(7)
	if !s.Union(o) || !s.Has(7) {
		t.Error("Union broken")
	}
}

// TestSetMembersProperty: Members returns exactly the added registers in
// ascending order.
func TestSetMembersProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet(256)
		want := map[ir.Reg]bool{}
		for i := 0; i < int(n); i++ {
			r := ir.Reg(rng.Intn(256))
			s.Add(r)
			want[r] = true
		}
		ms := s.Members()
		if len(ms) != len(want) {
			return false
		}
		for i, r := range ms {
			if !want[r] {
				return false
			}
			if i > 0 && ms[i-1] >= r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// straightLine builds r2 := r0 + r1; return. r0 and r1 are live-in.
func straightLine() *ir.Func {
	return &ir.Func{
		Name: "t", NumRegs: 3,
		Code: []ir.Instr{
			{Op: ir.OpBin, Dst: 2, A: 0, B: 1, Tok: token.PLUS},
			{Op: ir.OpReturn},
		},
		Frags: []ir.Fragment{{Start: 0, Site: -1}},
	}
}

func TestStraightLineLiveness(t *testing.T) {
	f := straightLine()
	res := Analyze(f)
	in := res.LiveAt(0)
	if !in.Has(0) || !in.Has(1) || in.Has(2) {
		t.Errorf("live-in at 0 = %v", in.Members())
	}
	if res.LiveAt(1).Count() != 0 {
		t.Errorf("live-in at return = %v", res.LiveAt(1).Members())
	}
}

func TestBranchLiveness(t *testing.T) {
	// if r0 goto L1 else L2; L1: r3 := r1; return; L2: r3 := r2; return.
	f := &ir.Func{
		Name: "b", NumRegs: 4,
		Code: []ir.Instr{
			{Op: ir.OpBranch, A: 0, Idx: 1, Idx2: 3},
			{Op: ir.OpMove, Dst: 3, A: 1},
			{Op: ir.OpReturn},
			{Op: ir.OpMove, Dst: 3, A: 2},
			{Op: ir.OpReturn},
		},
		Frags: []ir.Fragment{{Start: 0, Site: -1}},
	}
	res := Analyze(f)
	in := res.LiveAt(0)
	for _, r := range []ir.Reg{0, 1, 2} {
		if !in.Has(r) {
			t.Errorf("r%d should be live at entry", r)
		}
	}
	if in.Has(3) {
		t.Error("r3 should be dead at entry")
	}
	// On the taken path only r1 is live.
	if got := res.LiveAt(1); !got.Has(1) || got.Has(2) {
		t.Errorf("live at 1 = %v", got.Members())
	}
}

func TestLoopLiveness(t *testing.T) {
	// L0: branch r0 ? 1 : 4; r1 := r1 + r2; jump 0; return
	f := &ir.Func{
		Name: "l", NumRegs: 3,
		Code: []ir.Instr{
			{Op: ir.OpBranch, A: 0, Idx: 1, Idx2: 3},
			{Op: ir.OpBin, Dst: 1, A: 1, B: 2, Tok: token.PLUS},
			{Op: ir.OpJump, Idx: 0},
			{Op: ir.OpReturn},
		},
		Frags: []ir.Fragment{{Start: 0, Site: -1}},
	}
	res := Analyze(f)
	in := res.LiveAt(0)
	// r1 and r2 live around the loop; r0 live for the condition.
	for _, r := range []ir.Reg{0, 1, 2} {
		if !in.Has(r) {
			t.Errorf("r%d should be live at loop head", r)
		}
	}
}

func TestSuspendFlowsIntoNextFragment(t *testing.T) {
	// r1 := cont; r2 := state{r1}; suspend r2; [frag1] r3 := r0; return.
	f := &ir.Func{
		Name: "s", NumRegs: 4,
		Code: []ir.Instr{
			{Op: ir.OpMakeCont, Dst: 1, Idx: 1},
			{Op: ir.OpMakeState, Dst: 2, Idx: 0, Args: []ir.Reg{1}},
			{Op: ir.OpSuspend, A: 2, Dst: ir.NoReg},
			{Op: ir.OpMove, Dst: 3, A: 0},
			{Op: ir.OpReturn},
		},
		Frags: []ir.Fragment{{Start: 0, Site: -1}, {Start: 3, Site: 0}},
	}
	res := Analyze(f)
	// r0 is used after the suspend, so it must be live at the entry (the
	// continuation pass would save it).
	if !res.LiveAt(0).Has(0) {
		t.Errorf("r0 should be live across the suspend: %v", res.LiveAt(0).Members())
	}
	if !res.LiveAt(3).Has(0) {
		t.Errorf("r0 should be live into fragment 1")
	}
}

// Property: live-in at any instruction contains every register the
// instruction itself uses.
func TestLivenessContainsUsesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		fn := &ir.Func{Name: "p", NumRegs: 8, Frags: []ir.Fragment{{Start: 0, Site: -1}}}
		for i := 0; i < n; i++ {
			fn.Code = append(fn.Code, ir.Instr{
				Op: ir.OpBin, Dst: ir.Reg(rng.Intn(8)),
				A: ir.Reg(rng.Intn(8)), B: ir.Reg(rng.Intn(8)), Tok: token.PLUS,
			})
		}
		fn.Code = append(fn.Code, ir.Instr{Op: ir.OpReturn})
		res := Analyze(fn)
		for i := 0; i < n; i++ {
			in := res.LiveAt(i)
			var uses []ir.Reg
			uses = fn.Code[i].Uses(uses)
			for _, u := range uses {
				if !in.Has(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

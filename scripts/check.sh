#!/usr/bin/env bash
# Full local check: build, go vet, tests under the race detector, and a
# teapot-vet sweep over the bundled protocols (which must stay clean).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
# The parallel checker's determinism contract and the sharded visited
# table, hammered explicitly under the race detector.
go test -race -count=1 -run 'TestWorkerEquivalence|TestBuggyTraceIdenticalAcrossWorkers|TestShardedVisitedRace' ./internal/mc/
go run ./cmd/teapot-vet ./internal/protocols/...
# Observability smoke test: a traced sim run must produce a Chrome trace
# that passes the schema check, and the checker must run with live
# progress enabled.
go vet ./internal/obs/ ./scripts/tracecheck/
tmptrace="$(mktemp -t teapot-trace.XXXXXX.json)"
trap 'rm -f "$tmptrace"' EXIT
go run ./cmd/teapot-sim -workload gauss -nodes 4 -iters 2 -trace "$tmptrace" -stats >/dev/null
go run ./scripts/tracecheck "$tmptrace"
go run ./cmd/teapot-verify -protocol stache -progress=always >/dev/null
# Fault-injection smoke matrix: the fault-tolerant Stache must verify under
# each budgeted fault the repo documents as its envelope, and the base
# Stache must demonstrably need the TIMEOUT machinery — a single dropped
# message is a reported violation (exit 2), not a pass. Built binary, not
# `go run`: go run collapses the child's exit code to 1.
verifybin="$(mktemp -t teapot-verify.XXXXXX)"
trap 'rm -f "$tmptrace" "$verifybin"' EXIT
go build -o "$verifybin" ./cmd/teapot-verify
for net in reorder=1 drop=1 dup=1 drop=1,dup=1; do
  "$verifybin" -proto stache-ft -net "$net" >/dev/null
done
rc=0
"$verifybin" -proto stache -net drop=1 >/dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "check.sh: stache -net drop=1 should exit 2 (violation), got $rc" >&2
  exit 1
fi

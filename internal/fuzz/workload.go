package fuzz

import (
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// WorkloadOpts shapes the random memory-access workload fuzzed runs
// execute. The workload is seeded and deterministic: the same opts always
// produce the same per-node operation streams, so a Schedule (which
// records the seed) reproduces the whole run, not just the network.
type WorkloadOpts struct {
	Nodes      int
	Blocks     int
	OpsPerNode int
	Seed       uint64
	Evict      bool // sprinkle voluntary evictions (invalidation protocols)
	Sync       bool // end each node with a SYNC sweep (buffered-write protocols)
}

// RandomProgram builds a seeded random read/write workload. Every node
// hammers every block (small machines, heavy sharing — the same shape the
// model checker explores), with reads outnumbering writes roughly 2:1.
func RandomProgram(o WorkloadOpts) *sim.Trace {
	ops := make([][]tempest.Op, o.Nodes)
	for n := 0; n < o.Nodes; n++ {
		r := rng{s: o.Seed*0x9e3779b97f4a7c15 + uint64(n)*0xbf58476d1ce4e5b9 + 1}
		var stream []tempest.Op
		for i := 0; i < o.OpsPerNode; i++ {
			addr := r.intn(o.Blocks)
			roll := r.intn(100)
			switch {
			case o.Evict && roll < 8:
				stream = append(stream, tempest.Op{Kind: tempest.OpEvict, Addr: addr})
			case roll < 40:
				stream = append(stream, tempest.Op{Kind: tempest.OpWrite, Addr: addr})
			case roll < 90:
				stream = append(stream, tempest.Op{Kind: tempest.OpRead, Addr: addr})
			default:
				stream = append(stream, tempest.Op{Kind: tempest.OpCompute, Cycles: int64(1 + r.intn(50))})
			}
		}
		if o.Sync {
			stream = append(stream, tempest.Op{Kind: tempest.OpSync})
		}
		ops[n] = stream
	}
	return sim.NewTrace(ops)
}

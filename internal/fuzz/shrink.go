package fuzz

// Schedule shrinking: delta debugging (Zeller's ddmin) over the decision
// list. Every subset of a schedule's decisions is itself a well-formed
// schedule — unrecorded steps replay as the benign option — so the shrink
// loop just deletes chunks of decisions and re-runs, keeping any subset
// that still fails with the original failure class. The result is
// 1-minimal: removing any single remaining decision makes the run pass.

// maxShrinkTries bounds the number of replays one shrink may spend.
const maxShrinkTries = 2000

// Shrink minimizes a failing schedule. It returns the shrunk schedule and
// the number of replays spent; if the input does not fail on replay it is
// returned unchanged with tries == 1.
func (f *Fuzzer) Shrink(s *Schedule) (*Schedule, int) {
	return ShrinkSchedule(s, func(cand *Schedule) string {
		return f.Replay(cand).class()
	})
}

// ShrinkSchedule minimizes a failing schedule against an arbitrary failure
// classifier: class replays a candidate and names its failure ("" = the
// run passes). Any subset that preserves the original schedule's class is
// kept. The litmus harness classifies runs by oracle violation, run error,
// or forbidden final state; the fuzzer's Shrink delegates here with its
// Report-based classifier.
func ShrinkSchedule(s *Schedule, class func(*Schedule) string) (*Schedule, int) {
	want := class(s)
	tries := 1
	if want == "" {
		return s, tries
	}
	fails := func(dec []Decision) bool {
		cand := *s
		cand.Decisions = dec
		return class(&cand) == want
	}

	dec := s.Decisions
	// Fast path: most seeded-bug failures need only a handful of the
	// recorded deviations, and quite often none of the late ones.
	if len(dec) > 0 {
		tries++
		if fails(nil) {
			dec = nil
		}
	}
	n := 2
	for len(dec) >= 2 && tries < maxShrinkTries {
		chunk := (len(dec) + n - 1) / n
		reduced := false
		for start := 0; start < len(dec) && tries < maxShrinkTries; start += chunk {
			end := start + chunk
			if end > len(dec) {
				end = len(dec)
			}
			complement := make([]Decision, 0, len(dec)-(end-start))
			complement = append(complement, dec[:start]...)
			complement = append(complement, dec[end:]...)
			tries++
			if fails(complement) {
				dec = complement
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(dec) {
				break
			}
			n *= 2
			if n > len(dec) {
				n = len(dec)
			}
		}
	}
	if len(dec) == 1 && tries < maxShrinkTries {
		tries++
		if fails(nil) {
			dec = nil
		}
	}
	out := *s
	out.Decisions = dec
	return &out, tries
}

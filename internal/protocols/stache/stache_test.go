package stache

import (
	"fmt"
	"strings"
	"testing"

	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

func TestCompiles(t *testing.T) {
	for _, opt := range []bool{false, true} {
		a, err := Compile(opt)
		if err != nil {
			t.Fatalf("optimize=%v: %v", opt, err)
		}
		if got := len(a.Sema.States); got != 16 {
			t.Errorf("states = %d, want 16", got)
		}
		if got := len(a.Sema.Messages); got != 16 {
			t.Errorf("messages = %d, want 16", got)
		}
		if a.Stats.Sites == 0 {
			t.Errorf("no suspend sites found")
		}
	}
}

func TestSubroutineStateSharing(t *testing.T) {
	a := MustCompile(true)
	// Home_AwaitPutData serves six transitions (GET_RO, GET_RW, UPGRADE,
	// RD_FAULT, WR_FAULT, stale WR_RO_FAULT from Home_Excl);
	// Home_AwaitInvAcks serves four (UPGRADE, GET_RW, WR_RO_FAULT, stale
	// WR_FAULT from Home_RS). Hence neither is a constant-continuation
	// target.
	putData := a.Sema.StateByName("Home_AwaitPutData").Index
	invAcks := a.Sema.StateByName("Home_AwaitInvAcks").Index
	counts := map[int]int{}
	for _, s := range a.IR.Sites {
		counts[s.TargetState]++
	}
	if counts[putData] != 6 {
		t.Errorf("Home_AwaitPutData sites = %d, want 6", counts[putData])
	}
	if counts[invAcks] != 4 {
		t.Errorf("Home_AwaitInvAcks sites = %d, want 4", counts[invAcks])
	}
	for _, s := range a.IR.Sites {
		if (s.TargetState == putData || s.TargetState == invAcks) && s.Constant {
			t.Errorf("multi-entry subroutine site %d marked constant", s.ID)
		}
	}
}

// machine is a deterministic in-order loopback substrate for N nodes.
type machine struct {
	t       *testing.T
	engines []*runtime.Engine
	queue   []delivery
	access  map[[2]int]sema.AccessMode
	woken   map[[2]int]int
}

type delivery struct {
	dst int
	msg *runtime.Message
}

func newMachine(t *testing.T, nodes, blocks int, optimize bool) *machine {
	a := MustCompile(optimize)
	m := &machine{t: t, access: make(map[[2]int]sema.AccessMode), woken: make(map[[2]int]int)}
	sup := MustSupport(a.Protocol)
	for n := 0; n < nodes; n++ {
		m.engines = append(m.engines, runtime.NewEngine(a.Protocol, n, blocks, m, sup))
	}
	// Home nodes start with full access; caches with none.
	for n := 0; n < nodes; n++ {
		for b := 0; b < blocks; b++ {
			if m.HomeNode(b) == n {
				m.access[[2]int{n, b}] = sema.AccReadWrite
			}
		}
	}
	return m
}

func (m *machine) Send(from, dst int, msg *runtime.Message) {
	m.queue = append(m.queue, delivery{dst: dst, msg: msg})
}
func (m *machine) AccessChange(node, id int, mode sema.AccessMode) {
	m.access[[2]int{node, id}] = mode
}
func (m *machine) RecvData(node, id int, mode sema.AccessMode) {
	m.access[[2]int{node, id}] = mode
}
func (m *machine) WakeUp(node, id int)      { m.woken[[2]int{node, id}]++ }
func (m *machine) HomeNode(id int) int      { return 0 }
func (m *machine) Print(node int, s string) { m.t.Logf("node %d: %s", node, s) }

func (m *machine) pump() {
	m.t.Helper()
	for steps := 0; len(m.queue) > 0; steps++ {
		if steps > 100000 {
			m.t.Fatal("pump did not quiesce")
		}
		d := m.queue[0]
		m.queue = m.queue[1:]
		if err := m.engines[d.dst].Deliver(d.msg); err != nil {
			m.t.Fatalf("deliver to node %d: %v", d.dst, err)
		}
	}
}

func (m *machine) event(node int, name string, id int) {
	m.t.Helper()
	p := m.engines[node].Proto
	if err := m.engines[node].InjectEvent(p.MsgIndex(name), id); err != nil {
		m.t.Fatalf("event %s on node %d: %v", name, node, err)
	}
	m.pump()
}

func (m *machine) stateOf(node, id int) string {
	return m.engines[node].Blocks[id].StateName(m.engines[node].Proto)
}

// checkCoherence asserts single-writer/multiple-reader on access modes.
func (m *machine) checkCoherence(id int) {
	m.t.Helper()
	writers, readers := 0, 0
	for n := range m.engines {
		switch m.access[[2]int{n, id}] {
		case sema.AccReadWrite:
			writers++
		case sema.AccReadOnly:
			readers++
		}
	}
	if writers > 1 || (writers == 1 && readers > 0) {
		m.t.Fatalf("coherence violation on block %d: %d writers, %d readers", id, writers, readers)
	}
}

func TestReadSharing(t *testing.T) {
	m := newMachine(t, 4, 1, true)
	m.event(1, "RD_FAULT", 0)
	m.event(2, "RD_FAULT", 0)
	m.event(3, "RD_FAULT", 0)
	if got := m.stateOf(0, 0); got != "Home_RS" {
		t.Errorf("home = %s, want Home_RS", got)
	}
	for n := 1; n <= 3; n++ {
		if got := m.stateOf(n, 0); got != "Cache_RO" {
			t.Errorf("node %d = %s, want Cache_RO", n, got)
		}
		if m.access[[2]int{n, 0}] != sema.AccReadOnly {
			t.Errorf("node %d access = %v", n, m.access[[2]int{n, 0}])
		}
	}
	m.checkCoherence(0)
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := newMachine(t, 4, 1, true)
	m.event(1, "RD_FAULT", 0)
	m.event(2, "RD_FAULT", 0)
	// Node 3 writes: all sharers must be invalidated.
	m.event(3, "WR_FAULT", 0)
	if got := m.stateOf(0, 0); got != "Home_Excl" {
		t.Errorf("home = %s, want Home_Excl", got)
	}
	if got := m.stateOf(3, 0); got != "Cache_RW" {
		t.Errorf("writer = %s, want Cache_RW", got)
	}
	for n := 1; n <= 2; n++ {
		if got := m.stateOf(n, 0); got != "Cache_Inv" {
			t.Errorf("node %d = %s, want Cache_Inv", n, got)
		}
	}
	m.checkCoherence(0)
	if m.woken[[2]int{3, 0}] != 1 {
		t.Errorf("writer woken %d times", m.woken[[2]int{3, 0}])
	}
}

func TestUpgrade(t *testing.T) {
	m := newMachine(t, 3, 1, true)
	m.event(1, "RD_FAULT", 0)
	m.event(2, "RD_FAULT", 0)
	m.event(1, "WR_RO_FAULT", 0) // upgrade while node 2 shares
	if got := m.stateOf(1, 0); got != "Cache_RW" {
		t.Errorf("upgrader = %s, want Cache_RW", got)
	}
	if got := m.stateOf(2, 0); got != "Cache_Inv" {
		t.Errorf("other sharer = %s, want Cache_Inv", got)
	}
	m.checkCoherence(0)
}

func TestOwnershipMigration(t *testing.T) {
	m := newMachine(t, 3, 1, true)
	m.event(1, "WR_FAULT", 0)
	m.event(2, "WR_FAULT", 0) // home must recall from 1, grant to 2
	if got := m.stateOf(1, 0); got != "Cache_Inv" {
		t.Errorf("old owner = %s", got)
	}
	if got := m.stateOf(2, 0); got != "Cache_RW" {
		t.Errorf("new owner = %s", got)
	}
	m.checkCoherence(0)
}

func TestReadAfterRemoteWrite(t *testing.T) {
	m := newMachine(t, 3, 1, true)
	m.event(1, "WR_FAULT", 0)
	m.event(2, "RD_FAULT", 0) // reader pulls block home, both share
	if got := m.stateOf(0, 0); got != "Home_RS" {
		t.Errorf("home = %s, want Home_RS", got)
	}
	if got := m.stateOf(1, 0); got != "Cache_Inv" {
		t.Errorf("old owner = %s, want Cache_Inv", got)
	}
	if got := m.stateOf(2, 0); got != "Cache_RO" {
		t.Errorf("reader = %s, want Cache_RO", got)
	}
	m.checkCoherence(0)
}

func TestHomeFaults(t *testing.T) {
	m := newMachine(t, 3, 1, true)
	// Remote write, then home read fault pulls it back.
	m.event(1, "WR_FAULT", 0)
	m.event(0, "RD_FAULT", 0)
	if got := m.stateOf(0, 0); got != "Home_Idle" {
		t.Errorf("home = %s, want Home_Idle", got)
	}
	if m.access[[2]int{0, 0}] != sema.AccReadWrite {
		t.Errorf("home access = %v", m.access[[2]int{0, 0}])
	}
	// Shared by 1, home write fault invalidates.
	m.event(1, "RD_FAULT", 0)
	m.event(0, "WR_RO_FAULT", 0)
	if got := m.stateOf(0, 0); got != "Home_Idle" {
		t.Errorf("home = %s, want Home_Idle after write", got)
	}
	if got := m.stateOf(1, 0); got != "Cache_Inv" {
		t.Errorf("sharer = %s, want Cache_Inv", got)
	}
	m.checkCoherence(0)
}

func TestEviction(t *testing.T) {
	m := newMachine(t, 3, 1, true)
	m.event(1, "RD_FAULT", 0)
	m.event(2, "RD_FAULT", 0)
	m.event(1, "EVICT", 0)
	if got := m.stateOf(1, 0); got != "Cache_Inv" {
		t.Errorf("evictor = %s", got)
	}
	if got := m.stateOf(0, 0); got != "Home_RS" {
		t.Errorf("home = %s, want Home_RS (node 2 still shares)", got)
	}
	m.event(2, "EVICT", 0)
	if got := m.stateOf(0, 0); got != "Home_Idle" {
		t.Errorf("home = %s, want Home_Idle after last eviction", got)
	}
	// Evicted node can re-request.
	m.event(1, "RD_FAULT", 0)
	if got := m.stateOf(1, 0); got != "Cache_RO" {
		t.Errorf("re-reader = %s", got)
	}
	m.checkCoherence(0)
}

func TestRandomizedWorkloadCoherent(t *testing.T) {
	// A deterministic pseudo-random stress: nodes issue reads, writes, and
	// evictions; after each quiescent step, coherence must hold.
	const nodes, blocks = 4, 3
	m := newMachine(t, nodes, blocks, true)
	seed := uint64(12345)
	rnd := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	for step := 0; step < 400; step++ {
		n := rnd(nodes)
		b := rnd(blocks)
		st := m.stateOf(n, b)
		var ev string
		switch st {
		case "Cache_Inv":
			if rnd(2) == 0 {
				ev = "RD_FAULT"
			} else {
				ev = "WR_FAULT"
			}
		case "Cache_RO":
			switch rnd(3) {
			case 0:
				ev = "WR_RO_FAULT"
			case 1:
				ev = "EVICT"
			default:
				continue // read hit
			}
		case "Cache_RW":
			continue // hit
		case "Home_Idle":
			continue // home has full access
		case "Home_RS":
			if rnd(2) == 0 {
				ev = "WR_RO_FAULT"
			} else {
				continue
			}
		case "Home_Excl":
			if rnd(2) == 0 {
				ev = "RD_FAULT"
			} else {
				ev = "WR_FAULT"
			}
		default:
			continue
		}
		m.event(n, ev, b)
		m.checkCoherence(b)
	}
	// Sanity: substantial handler activity occurred.
	var handlers int64
	for _, e := range m.engines {
		handlers += e.Counters().Handlers
	}
	if handlers < 100 {
		t.Errorf("only %d handler activations in stress run", handlers)
	}
}

func TestAllocCountsOptVsUnopt(t *testing.T) {
	counts := func(optimize bool) (heap, static int64) {
		m := newMachine(t, 4, 2, optimize)
		for i := 0; i < 10; i++ {
			m.event(1+(i%3), "RD_FAULT", i%2)
			m.event(1+((i+1)%3), "WR_FAULT", i%2)
		}
		var c vm.Counters
		for _, e := range m.engines {
			c.Add(e.Counters())
		}
		return c.HeapConts, c.StaticConts
	}
	uh, us := counts(false)
	oh, os := counts(true)
	if uh == 0 || us != 0 {
		t.Errorf("unopt: heap=%d static=%d, want heap>0 static=0", uh, us)
	}
	if oh >= uh {
		t.Errorf("optimized heap allocs (%d) not below unoptimized (%d)", oh, uh)
	}
	if os == 0 {
		t.Errorf("optimized run should use static continuations")
	}
	t.Logf("heap conts: unopt=%d opt=%d (static %d)", uh, oh, os)
}

func TestSupportErrors(t *testing.T) {
	a := MustCompile(true)
	sup := MustSupport(a.Protocol)
	_, err := sup.Call(&runtime.Ctx{}, "NoSuchRoutine", nil)
	if err == nil {
		t.Error("expected error for unknown routine")
	}
	_ = fmt.Sprintf // keep fmt import meaningful if asserts change
}

// TestBuggySourceDiffersOnlyInOneHandler guards the seeded-bug fixture
// against drift: the buggy variant must be the real source minus exactly
// the upgrade/invalidate race handler.
func TestBuggySourceDiffersOnlyInOneHandler(t *testing.T) {
	if BuggySource == Source {
		t.Fatal("buggy source identical to the real one")
	}
	if len(Source)-len(BuggySource) <= 0 {
		t.Fatal("buggy source should be strictly smaller")
	}
	// The removed text is the Cache_RO_To_RW PUT_NO_DATA_REQ handler.
	if !strings.Contains(Source, "message PUT_NO_DATA_REQ") {
		t.Fatal("marker missing from real source")
	}
	realCount := strings.Count(Source, "message PUT_NO_DATA_REQ")
	buggyCount := strings.Count(BuggySource, "message PUT_NO_DATA_REQ")
	if buggyCount != realCount-1 {
		t.Errorf("buggy source removes %d handlers, want exactly 1", realCount-buggyCount)
	}
}

package analysis

import (
	"teapot/internal/ir"
	"teapot/internal/sema"
	"teapot/internal/source"
)

// Continuation-soundness checks (§5 of the paper): a subroutine state holds
// the suspended handler's continuation in its CONT parameter. Every path
// through its handlers must either keep waiting (no transition), Resume the
// continuation, or forward it into the next state's CONT slot. A path that
// transitions away while dropping the continuation leaks it: the suspended
// handler's remaining fragments never execute, which typically surfaces
// during model checking as a stalled processor that is never woken.

// runContLeak flags transitions out of a subroutine state that drop the
// continuation: a SetState/Suspend whose target-state arguments do not
// include the CONT parameter, on a path where the continuation can no
// longer be resumed or escape.
func runContLeak(c *Ctx) {
	for si, st := range c.Sema.States {
		creg := c.facts.contReg[si]
		if creg == ir.NoReg {
			continue
		}
		for _, fn := range stateFuncs(c.IR, si) {
			for i := range fn.Code {
				in := &fn.Code[i]
				if in.Op != ir.OpMakeState || in.Idx == si || !stateIsSet(fn, i) {
					continue
				}
				if argsContain(in, creg) {
					continue // forwarded into the next state
				}
				if leakPath(fn, i, creg) {
					c.Reportf(source.SevWarning, instrPos(fn, i),
						"handler %s transitions %s -> %s without resuming or forwarding continuation %s: the suspended handler never completes",
						fn.Name, st.Name, c.Sema.States[in.Idx].Name, contName(st))
				}
			}
		}
	}
}

// leakPath reports whether some path from the transition at index i reaches
// the end of the handler without the continuation register being resumed or
// escaping (into a continuation record, a state constructor, or a support
// call).
func leakPath(fn *ir.Func, i int, creg ir.Reg) bool {
	seen := make([]bool, len(fn.Code))
	var succs []int
	stack := []int{i}
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[j] {
			continue
		}
		seen[j] = true
		in := &fn.Code[j]
		if j != i { // the transition instruction itself was already vetted
			if in.Op == ir.OpResume {
				if in.A == creg {
					continue // this path resumes the continuation
				}
				return true // resumes a different continuation, dropping ours
			}
			if regUsed(in, creg) {
				continue // the continuation escapes; assume it is kept alive
			}
		}
		if in.Op == ir.OpReturn {
			return true // fell off the handler still holding the continuation
		}
		succs = fn.Succs(j, succs[:0])
		if len(succs) == 0 && in.Op != ir.OpResume {
			return true // suspend with no resume fragment: continuation dropped
		}
		stack = append(stack, succs...)
	}
	return false
}

// runContStuck flags subroutine states none of whose handlers can ever
// Resume the continuation or pass it onward: the continuation is captured
// at the suspend site but can never run, so the suspended handler's caller
// waits forever.
func runContStuck(c *Ctx) {
	for si, st := range c.Sema.States {
		creg := c.facts.contReg[si]
		if creg == ir.NoReg || !c.facts.reach[si] {
			continue
		}
		escapes := false
		for _, fn := range stateFuncs(c.IR, si) {
			for i := range fn.Code {
				in := &fn.Code[i]
				switch {
				case in.Op == ir.OpResume:
					escapes = true
				case in.Op == ir.OpCall && in.Fn.Builtin == sema.BNone && regUsed(in, creg):
					escapes = true // handed to a support routine
				case in.Op == ir.OpMakeState && argsContain(in, creg):
					escapes = true // forwarded to another state
				case in.Op == ir.OpMakeCont && argsContain(in, creg):
					escapes = true // saved inside a nested continuation
				}
			}
		}
		if !escapes {
			c.Reportf(source.SevWarning, c.statePos(st),
				"subroutine state %s never resumes or forwards continuation %s: suspended handlers entering it never complete",
				st.Name, contName(st))
		}
	}
}

// stateFuncs returns the state's handlers (message handlers in message
// order, then the DEFAULT), deterministically.
func stateFuncs(p *ir.Program, si int) []*ir.Func {
	var out []*ir.Func
	for mi := 0; mi < len(p.Sema.Messages); mi++ {
		if fn, ok := p.HandlerFunc[si][mi]; ok {
			out = append(out, fn)
		}
	}
	if p.Defaults[si] != nil {
		out = append(out, p.Defaults[si])
	}
	return out
}

// contName returns the name of the state's CONT parameter.
func contName(st *sema.StateSym) string {
	for _, prm := range st.Params {
		if prm.Type.Kind == sema.TCont {
			return prm.Name
		}
	}
	return "CONT"
}

// regUsed reports whether the instruction reads reg through any operand.
// (Raw A/B field comparison would false-match ops that leave those fields
// at their zero value, which is a real register number.)
func regUsed(in *ir.Instr, reg ir.Reg) bool {
	for _, u := range in.Uses(nil) {
		if u == reg {
			return true
		}
	}
	return false
}

// instrPos returns the instruction's position, falling back to the nearest
// preceding positioned instruction.
func instrPos(fn *ir.Func, i int) source.Pos {
	for j := i; j >= 0; j-- {
		if fn.Code[j].Pos.IsValid() {
			return fn.Code[j].Pos
		}
	}
	return source.Pos{}
}

package lcm

import (
	"fmt"

	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/tempest"
)

// HW is the hand-written state-machine implementation of base LCM — the
// "C State Machine" column of Table 2. Like the Stache baseline it is
// wire-compatible with the compiled Teapot protocol, but every waiting
// point is an explicit intermediate state with per-block pending fields.
// The paper reports the hand-written LCM at ~2500 lines of C that
// "contained numerous bugs that consumed months of effort to fix"; the
// Teapot version of the same protocol is generated from the verified
// specification.
type HW struct {
	nodes, blocks int
	machine       runtime.Machine
	msg           hwMsgs
	blks          [][]hwBlock
	counters      []tempest.CostCounters
}

type hwMsgs struct {
	rdFault, wrFault, wrROFault, evict                   int
	getROReq, getROResp, getRWReq, getRWResp             int
	upgradeReq, upgradeAck                               int
	putDataReq, putDataResp, putNoDataReq, putNoDataResp int
	evictROReq, evictROAck                               int
	beginEv, endEv, begin                                int
	getLCMReq, getLCMResp, putAccum, putAccumAck         int
	fwdReq, fwdBounce, update                            int
}

type hwState int

const (
	hwInv hwState = iota
	hwRO
	hwRW
	hwInvToRO
	hwInvToROP
	hwInvToRW
	hwROToRW
	hwROEvicting
	hwEvToRO
	hwEvToRW
	hwPEvicting
	hwIdle
	hwRS
	hwExcl
	hwAwaitPut
	hwAwaitAcks
	// LCM states.
	hwLCMIdle
	hwLCMDirty
	hwLCMWait
	hwAccumWait // cache: flushed at phase entry, awaiting PUT_ACCUM_ACK
	hwLCM
	hwAwaitBegin // home: acknowledged an entry flush, awaiting BEGIN_LCM
)

var hwStateNames = [...]string{
	"Cache_Inv", "Cache_RO", "Cache_RW", "Cache_Inv_To_RO", "Cache_Inv_To_RO_P",
	"Cache_Inv_To_RW", "Cache_RO_To_RW", "Cache_RO_Evicting", "Cache_Ev_To_RO",
	"Cache_Ev_To_RW", "Cache_P_Evicting", "Home_Idle", "Home_RS", "Home_Excl",
	"Home_AwaitPutData", "Home_AwaitInvAcks",
	"Cache_LCM_Idle", "Cache_LCM_Dirty", "Cache_LCM_Wait", "Cache_AwaitAccumAck",
	"Home_LCM", "Home_Await_BEGIN_LCM",
}

func (s hwState) String() string { return hwStateNames[s] }

type hwPending int

const (
	pNone hwPending = iota
	pGrantRO
	pGrantRW
	pUpgrade
	pHomeRead
	pHomeWrite
	pGrantLCM // after acks or put-data: grant a private phase copy
)

type hwBlock struct {
	state   hwState
	sharers int64
	owner   int

	pending     hwPending
	pendingSrc  int
	pendingAcks int

	copies int

	deferred     []*runtime.Message
	transitioned bool
}

// NewHW builds the hand-written base-LCM engine, wire-compatible with the
// compiled protocol p.
func NewHW(p *runtime.Protocol, nodes, blocks int, m runtime.Machine) *HW {
	h := &HW{
		nodes: nodes, blocks: blocks, machine: m,
		msg: hwMsgs{
			rdFault: p.MsgIndex("RD_FAULT"), wrFault: p.MsgIndex("WR_FAULT"),
			wrROFault: p.MsgIndex("WR_RO_FAULT"), evict: p.MsgIndex("EVICT"),
			getROReq: p.MsgIndex("GET_RO_REQ"), getROResp: p.MsgIndex("GET_RO_RESP"),
			getRWReq: p.MsgIndex("GET_RW_REQ"), getRWResp: p.MsgIndex("GET_RW_RESP"),
			upgradeReq: p.MsgIndex("UPGRADE_REQ"), upgradeAck: p.MsgIndex("UPGRADE_ACK"),
			putDataReq: p.MsgIndex("PUT_DATA_REQ"), putDataResp: p.MsgIndex("PUT_DATA_RESP"),
			putNoDataReq: p.MsgIndex("PUT_NO_DATA_REQ"), putNoDataResp: p.MsgIndex("PUT_NO_DATA_RESP"),
			evictROReq: p.MsgIndex("EVICT_RO_REQ"), evictROAck: p.MsgIndex("EVICT_RO_ACK"),
			beginEv: p.MsgIndex("BEGIN_LCM_EV"), endEv: p.MsgIndex("END_LCM_EV"),
			begin:     p.MsgIndex("BEGIN_LCM"),
			getLCMReq: p.MsgIndex("GET_LCM_REQ"), getLCMResp: p.MsgIndex("GET_LCM_RESP"),
			putAccum: p.MsgIndex("PUT_ACCUM"), putAccumAck: p.MsgIndex("PUT_ACCUM_ACK"),
			fwdReq: p.MsgIndex("FWD_LCM_REQ"), fwdBounce: p.MsgIndex("FWD_BOUNCE"),
			update: p.MsgIndex("LCM_UPDATE"),
		},
		counters: make([]tempest.CostCounters, nodes),
	}
	h.blks = make([][]hwBlock, nodes)
	for n := range h.blks {
		h.blks[n] = make([]hwBlock, blocks)
		for b := range h.blks[n] {
			if m.HomeNode(b) == n {
				h.blks[n][b].state = hwIdle
			} else {
				h.blks[n][b].state = hwInv
			}
			h.blks[n][b].owner = -1
		}
	}
	return h
}

// StateName reports a block's state (for tests).
func (h *HW) StateName(node, block int) string { return h.blks[node][block].state.String() }

// Counters implements tempest.Engine.
func (h *HW) Counters(node int) tempest.CostCounters { return h.counters[node] }

// Event implements tempest.Engine.
func (h *HW) Event(node int, tag int, id int) error {
	return h.Deliver(node, &runtime.Message{Tag: tag, ID: id, Src: node})
}

// Deliver implements tempest.Engine.
func (h *HW) Deliver(node int, m *runtime.Message) error {
	b := &h.blks[node][m.ID]
	b.transitioned = false
	if err := h.dispatch(node, b, m); err != nil {
		return err
	}
	for pass := 0; b.transitioned && len(b.deferred) > 0; pass++ {
		if pass > 10000 {
			return fmt.Errorf("lcm-hw: deferred queue never drained")
		}
		b.transitioned = false
		q := b.deferred
		b.deferred = nil
		for _, dm := range q {
			if err := h.dispatch(node, b, dm); err != nil {
				return err
			}
		}
	}
	return nil
}

func (h *HW) ops(node int, n int64) { h.counters[node].Instrs += n }

func (h *HW) send(node, dst int, tag, id int, data bool) {
	h.counters[node].Sends++
	h.ops(node, 1)
	h.machine.Send(node, dst, &runtime.Message{Tag: tag, ID: id, Src: node, Data: data})
}

func (h *HW) setState(node int, b *hwBlock, s hwState) {
	h.ops(node, 1)
	b.state = s
	b.transitioned = true
}

func (h *HW) access(node, id int, mode sema.AccessMode) {
	h.ops(node, 1)
	h.machine.AccessChange(node, id, mode)
}

func (h *HW) enqueue(node int, b *hwBlock, m *runtime.Message) {
	h.ops(node, 2)
	b.deferred = append(b.deferred, m)
}

func (h *HW) home(id int) int { return h.machine.HomeNode(id) }

func (h *HW) errf(node int, b *hwBlock, m *runtime.Message) error {
	return fmt.Errorf("lcm-hw: node %d: invalid msg %d to %s (block %d)", node, m.Tag, b.state, m.ID)
}

func (h *HW) invalidateSharers(node int, b *hwBlock, excl, id int) int {
	count := 0
	for n := 0; n < h.nodes; n++ {
		if b.sharers&(1<<uint(n)) == 0 || n == excl {
			continue
		}
		h.send(node, n, h.msg.putNoDataReq, id, false)
		count++
	}
	h.ops(node, 2)
	return count
}

func (h *HW) completeAcks(node int, b *hwBlock, id int) {
	switch b.pending {
	case pUpgrade:
		if b.sharers&(1<<uint(b.pendingSrc)) != 0 {
			h.send(node, b.pendingSrc, h.msg.upgradeAck, id, false)
		} else {
			h.send(node, b.pendingSrc, h.msg.getRWResp, id, true)
		}
		b.sharers = 0
		b.owner = b.pendingSrc
		h.access(node, id, sema.AccInvalid)
		h.setState(node, b, hwExcl)
	case pGrantRW:
		b.sharers = 0
		h.send(node, b.pendingSrc, h.msg.getRWResp, id, true)
		b.owner = b.pendingSrc
		h.access(node, id, sema.AccInvalid)
		h.setState(node, b, hwExcl)
	case pHomeWrite:
		b.sharers = 0
		h.access(node, id, sema.AccReadWrite)
		h.setState(node, b, hwIdle)
		h.machine.WakeUp(node, id)
	case pGrantLCM:
		b.sharers = 0
		h.grantLCM(node, b, id, b.pendingSrc)
		h.access(node, id, sema.AccReadWrite)
		h.setState(node, b, hwLCM)
	}
	b.pending = pNone
	h.ops(node, 3)
}

func (h *HW) completePut(node int, b *hwBlock, id int) {
	switch b.pending {
	case pGrantRO:
		h.send(node, b.pendingSrc, h.msg.getROResp, id, true)
		b.sharers |= 1 << uint(b.pendingSrc)
		h.access(node, id, sema.AccReadOnly)
		h.setState(node, b, hwRS)
	case pGrantRW, pUpgrade:
		h.send(node, b.pendingSrc, h.msg.getRWResp, id, true)
		b.owner = b.pendingSrc
		h.access(node, id, sema.AccInvalid)
		h.setState(node, b, hwExcl)
	case pHomeRead, pHomeWrite:
		h.access(node, id, sema.AccReadWrite)
		h.setState(node, b, hwIdle)
		h.machine.WakeUp(node, id)
	case pGrantLCM:
		h.grantLCM(node, b, id, b.pendingSrc)
		h.access(node, id, sema.AccReadWrite)
		h.setState(node, b, hwLCM)
	}
	b.pending = pNone
	h.ops(node, 3)
}

// grantLCM hands out one private phase copy.
func (h *HW) grantLCM(node int, b *hwBlock, id, src int) {
	b.copies++
	b.sharers |= 1 << uint(src) // consumer tracking
	h.ops(node, 3)
	h.send(node, src, h.msg.getLCMResp, id, true)
}

func (h *HW) dispatch(node int, b *hwBlock, m *runtime.Message) error {
	h.counters[node].Handlers++
	h.ops(node, 5)
	msg := &h.msg
	id := m.ID
	switch b.state {

	// ---- Stache-mode cache states (identical to the Stache baseline) ----

	case hwInv:
		switch m.Tag {
		case msg.rdFault:
			h.send(node, h.home(id), msg.getROReq, id, false)
			h.setState(node, b, hwInvToRO)
		case msg.wrFault:
			h.send(node, h.home(id), msg.getRWReq, id, false)
			h.setState(node, b, hwInvToRW)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		case msg.putDataReq:
			h.ops(node, 1) // stale recall, satisfied by a reconciliation
		case msg.beginEv:
			h.setState(node, b, hwLCMIdle)
		case msg.update:
			h.machine.RecvData(node, id, sema.AccReadOnly)
			h.ops(node, 1)
			h.setState(node, b, hwRO)
		default:
			return h.errf(node, b, m)
		}

	case hwInvToRO:
		switch m.Tag {
		case msg.putDataReq:
			h.ops(node, 1) // stale recall
		case msg.getROResp:
			h.machine.RecvData(node, id, sema.AccReadOnly)
			h.ops(node, 1)
			h.setState(node, b, hwRO)
			h.machine.WakeUp(node, id)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
			h.setState(node, b, hwInvToROP)
		default:
			h.enqueue(node, b, m)
		}

	case hwInvToROP:
		switch m.Tag {
		case msg.getROResp:
			h.send(node, h.home(id), msg.evictROReq, id, false)
			h.setState(node, b, hwPEvicting)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwPEvicting:
		switch m.Tag {
		case msg.evictROAck:
			h.send(node, h.home(id), msg.getROReq, id, false)
			h.setState(node, b, hwInvToRO)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwInvToRW:
		switch m.Tag {
		case msg.putDataReq:
			h.ops(node, 1) // stale recall
		case msg.getRWResp:
			h.machine.RecvData(node, id, sema.AccReadWrite)
			h.ops(node, 1)
			h.setState(node, b, hwRW)
			h.machine.WakeUp(node, id)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwRO:
		switch m.Tag {
		case msg.wrROFault:
			h.send(node, h.home(id), msg.upgradeReq, id, false)
			h.setState(node, b, hwROToRW)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
			h.setState(node, b, hwInv)
			h.access(node, id, sema.AccInvalid)
		case msg.evict:
			h.send(node, h.home(id), msg.evictROReq, id, false)
			h.setState(node, b, hwROEvicting)
			h.access(node, id, sema.AccInvalid)
		case msg.putDataReq:
			h.ops(node, 1) // stale recall
		case msg.beginEv:
			h.send(node, h.home(id), msg.begin, id, false)
			h.access(node, id, sema.AccInvalid)
			h.setState(node, b, hwLCMIdle)
		default:
			return h.errf(node, b, m)
		}

	case hwROToRW:
		switch m.Tag {
		case msg.putDataReq:
			h.ops(node, 1) // stale recall
		case msg.upgradeAck:
			h.setState(node, b, hwRW)
			h.access(node, id, sema.AccReadWrite)
			h.machine.WakeUp(node, id)
		case msg.getRWResp:
			h.machine.RecvData(node, id, sema.AccReadWrite)
			h.ops(node, 1)
			h.setState(node, b, hwRW)
			h.machine.WakeUp(node, id)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
			h.access(node, id, sema.AccInvalid)
		default:
			h.enqueue(node, b, m)
		}

	case hwRW:
		switch m.Tag {
		case msg.putDataReq:
			h.send(node, h.home(id), msg.putDataResp, id, true)
			h.setState(node, b, hwInv)
			h.access(node, id, sema.AccInvalid)
		case msg.beginEv:
			// Figure 11's FlushCopy: reconcile and announce the entry; the
			// BEGIN_LCM chases the PUT_ACCUM into the home.
			h.send(node, h.home(id), msg.putAccum, id, true)
			h.send(node, h.home(id), msg.begin, id, false)
			h.access(node, id, sema.AccInvalid)
			h.setState(node, b, hwAccumWait)
		default:
			return h.errf(node, b, m)
		}

	case hwAccumWait:
		switch m.Tag {
		case msg.putAccumAck:
			h.setState(node, b, hwLCMIdle)
		case msg.putDataReq:
			h.ops(node, 1) // recall crossed our reconciliation
		default:
			h.enqueue(node, b, m)
		}

	case hwROEvicting:
		switch m.Tag {
		case msg.evictROAck:
			h.setState(node, b, hwInv)
		case msg.rdFault:
			h.setState(node, b, hwEvToRO)
		case msg.wrFault:
			h.setState(node, b, hwEvToRW)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwEvToRO:
		switch m.Tag {
		case msg.evictROAck:
			h.send(node, h.home(id), msg.getROReq, id, false)
			h.setState(node, b, hwInvToRO)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwEvToRW:
		switch m.Tag {
		case msg.evictROAck:
			h.send(node, h.home(id), msg.getRWReq, id, false)
			h.setState(node, b, hwInvToRW)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	// ---- LCM cache states ----

	case hwLCMIdle:
		switch m.Tag {
		case msg.rdFault, msg.wrFault:
			h.send(node, h.home(id), msg.getLCMReq, id, false)
			h.setState(node, b, hwLCMWait)
		case msg.endEv:
			h.setState(node, b, hwInv)
		case msg.beginEv:
			h.ops(node, 1) // idempotent re-entry
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		case msg.putDataReq:
			h.ops(node, 1) // stale recall
		case msg.fwdReq:
			h.send(node, h.home(id), msg.fwdBounce, id, false) // payload elided in HW
		case msg.putAccumAck, msg.update:
			// stale
		default:
			return h.errf(node, b, m)
		}

	case hwLCMWait:
		switch m.Tag {
		case msg.getLCMResp:
			h.machine.RecvData(node, id, sema.AccReadWrite)
			h.ops(node, 1)
			h.setState(node, b, hwLCMDirty)
			h.machine.WakeUp(node, id)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		case msg.putDataReq:
			h.ops(node, 1) // stale recall
		case msg.fwdReq:
			h.send(node, h.home(id), msg.fwdBounce, id, false)
		case msg.update:
			// stale
		default:
			h.enqueue(node, b, m)
		}

	case hwLCMDirty:
		switch m.Tag {
		case msg.endEv:
			h.send(node, h.home(id), msg.putAccum, id, true)
			h.access(node, id, sema.AccInvalid)
			h.setState(node, b, hwInv)
		case msg.fwdReq:
			h.send(node, m.Src, msg.getLCMResp, id, true)
		case msg.putDataReq:
			h.ops(node, 1) // stale recall
		case msg.putAccumAck, msg.update:
			// stale
		default:
			return h.errf(node, b, m)
		}

	// ---- Home side, Stache mode ----

	case hwIdle:
		switch m.Tag {
		case msg.getROReq:
			h.send(node, m.Src, msg.getROResp, id, true)
			b.sharers |= 1 << uint(m.Src)
			h.access(node, id, sema.AccReadOnly)
			h.setState(node, b, hwRS)
		case msg.getRWReq, msg.upgradeReq:
			h.send(node, m.Src, msg.getRWResp, id, true)
			b.owner = m.Src
			h.access(node, id, sema.AccInvalid)
			h.setState(node, b, hwExcl)
		case msg.evictROReq:
			h.send(node, m.Src, msg.evictROAck, id, false)
		case msg.rdFault, msg.wrFault, msg.wrROFault:
			h.machine.WakeUp(node, id)
			h.ops(node, 1)
		case msg.getLCMReq:
			h.grantLCM(node, b, id, m.Src)
			h.access(node, id, sema.AccReadWrite)
			h.setState(node, b, hwLCM)
		case msg.putAccum:
			h.machine.RecvData(node, id, sema.AccReadWrite)
			h.ops(node, 2) // merge
		case msg.begin, msg.beginEv, msg.endEv:
			h.ops(node, 1) // stale / purely local
		default:
			return h.errf(node, b, m)
		}

	case hwRS:
		switch m.Tag {
		case msg.getROReq:
			if b.sharers&(1<<uint(m.Src)) != 0 {
				h.enqueue(node, b, m)
			} else {
				h.send(node, m.Src, msg.getROResp, id, true)
				b.sharers |= 1 << uint(m.Src)
				h.ops(node, 1)
			}
		case msg.upgradeReq:
			n := h.invalidateSharers(node, b, m.Src, id)
			b.pending, b.pendingSrc, b.pendingAcks = pUpgrade, m.Src, n
			if n == 0 {
				h.completeAcks(node, b, id)
			} else {
				h.setState(node, b, hwAwaitAcks)
			}
		case msg.getRWReq:
			if b.sharers&(1<<uint(m.Src)) != 0 {
				h.enqueue(node, b, m)
				break
			}
			n := h.invalidateSharers(node, b, m.Src, id)
			b.pending, b.pendingSrc, b.pendingAcks = pGrantRW, m.Src, n
			if n == 0 {
				h.completeAcks(node, b, id)
			} else {
				h.setState(node, b, hwAwaitAcks)
			}
		case msg.wrROFault, msg.wrFault:
			n := h.invalidateSharers(node, b, node, id)
			b.pending, b.pendingAcks = pHomeWrite, n
			if n == 0 {
				h.completeAcks(node, b, id)
			} else {
				h.setState(node, b, hwAwaitAcks)
			}
		case msg.rdFault:
			h.machine.WakeUp(node, id)
			h.ops(node, 1)
		case msg.evictROReq:
			b.sharers &^= 1 << uint(m.Src)
			h.send(node, m.Src, msg.evictROAck, id, false)
			if b.sharers == 0 {
				h.access(node, id, sema.AccReadWrite)
				h.setState(node, b, hwIdle)
			} else {
				h.setState(node, b, hwRS)
			}
		case msg.getLCMReq:
			n := h.invalidateSharers(node, b, m.Src, id)
			b.pending, b.pendingSrc, b.pendingAcks = pGrantLCM, m.Src, n
			if n == 0 {
				h.completeAcks(node, b, id)
			} else {
				h.setState(node, b, hwAwaitAcks)
			}
		case msg.begin:
			b.sharers &^= 1 << uint(m.Src)
			h.ops(node, 1)
			if b.sharers == 0 {
				h.access(node, id, sema.AccReadWrite)
				h.setState(node, b, hwIdle)
			} else {
				h.setState(node, b, hwRS)
			}
		case msg.beginEv, msg.endEv:
			h.ops(node, 1)
		default:
			return h.errf(node, b, m)
		}

	case hwExcl:
		switch m.Tag {
		case msg.getROReq:
			h.send(node, b.owner, msg.putDataReq, id, false)
			b.pending, b.pendingSrc = pGrantRO, m.Src
			h.setState(node, b, hwAwaitPut)
		case msg.getRWReq, msg.upgradeReq:
			h.send(node, b.owner, msg.putDataReq, id, false)
			b.pending, b.pendingSrc = pGrantRW, m.Src
			h.setState(node, b, hwAwaitPut)
		case msg.rdFault:
			h.send(node, b.owner, msg.putDataReq, id, false)
			b.pending = pHomeRead
			h.setState(node, b, hwAwaitPut)
		case msg.wrFault, msg.wrROFault:
			h.send(node, b.owner, msg.putDataReq, id, false)
			b.pending = pHomeWrite
			h.setState(node, b, hwAwaitPut)
		case msg.evictROReq:
			h.send(node, m.Src, msg.evictROAck, id, false)
		case msg.putAccum:
			// Figure 11: the owner reconciles on phase entry.
			h.machine.RecvData(node, id, sema.AccReadOnly)
			h.ops(node, 2)
			h.send(node, m.Src, msg.putAccumAck, id, false)
			h.setState(node, b, hwAwaitBegin)
		case msg.begin:
			if m.Src == b.owner {
				h.enqueue(node, b, m) // overtook the owner's reconciliation
			} else {
				h.ops(node, 1) // stale
			}
		case msg.beginEv, msg.endEv:
			h.ops(node, 1) // purely local
		case msg.getLCMReq:
			h.send(node, b.owner, msg.putDataReq, id, false)
			b.pending, b.pendingSrc = pGrantLCM, m.Src
			h.setState(node, b, hwAwaitPut)
		case msg.putDataResp:
			// Voluntary give-back: the owner answered a stale recall.
			h.machine.RecvData(node, id, sema.AccReadOnly)
			h.ops(node, 1)
			h.access(node, id, sema.AccReadWrite)
			h.setState(node, b, hwIdle)
		default:
			return h.errf(node, b, m)
		}

	case hwAwaitPut:
		switch m.Tag {
		case msg.putDataResp:
			h.machine.RecvData(node, id, sema.AccReadOnly)
			h.ops(node, 1)
			h.completePut(node, b, id)
		case msg.putAccum:
			// The owner reconciled (phase entry) instead of answering the
			// recall; the data came back all the same.
			h.machine.RecvData(node, id, sema.AccReadOnly)
			h.ops(node, 2)
			h.send(node, m.Src, msg.putAccumAck, id, false)
			h.completePut(node, b, id)
		case msg.evictROReq:
			h.send(node, m.Src, msg.evictROAck, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwAwaitAcks:
		switch m.Tag {
		case msg.putNoDataResp:
			b.sharers &^= 1 << uint(m.Src)
			b.pendingAcks--
			h.ops(node, 2)
			if b.pendingAcks == 0 {
				h.completeAcks(node, b, id)
			}
		case msg.evictROReq:
			b.sharers &^= 1 << uint(m.Src)
			h.send(node, m.Src, msg.evictROAck, id, false)
		default:
			h.enqueue(node, b, m)
		}

	// ---- Home side, LCM mode ----

	case hwAwaitBegin:
		switch m.Tag {
		case msg.begin:
			h.access(node, id, sema.AccReadWrite)
			h.setState(node, b, hwIdle)
		default:
			h.enqueue(node, b, m)
		}

	case hwLCM:
		switch m.Tag {
		case msg.getLCMReq:
			h.grantLCM(node, b, id, m.Src)
		case msg.fwdBounce:
			h.send(node, m.Src, msg.getLCMResp, id, true)
		case msg.putAccum:
			h.machine.RecvData(node, id, sema.AccReadWrite)
			h.ops(node, 2)
			b.copies--
			if b.copies == 0 {
				b.sharers = 0 // ClearConsumers (base variant)
				h.setState(node, b, hwIdle)
			}
		case msg.getROReq, msg.getRWReq, msg.upgradeReq:
			h.enqueue(node, b, m)
		case msg.evictROReq:
			h.send(node, m.Src, msg.evictROAck, id, false)
		case msg.begin, msg.beginEv, msg.endEv:
			h.ops(node, 1)
		default:
			return h.errf(node, b, m)
		}

	default:
		return fmt.Errorf("lcm-hw: unknown state %d", b.state)
	}
	return nil
}

var _ tempest.Engine = (*HW)(nil)

package ast

import (
	"fmt"
	"strings"

	"teapot/internal/token"
)

// Print renders a Program back into canonical Teapot source. Parsing the
// output yields a structurally identical tree (round-trip property, tested in
// the parser package).
func Print(p *Program) string {
	var pr printer
	for _, m := range p.Modules {
		pr.module(m)
	}
	if p.Protocol != nil {
		pr.protocol(p.Protocol)
	}
	for _, s := range p.States {
		pr.state(s)
	}
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) module(m *Module) {
	p.line("module %s begin", m.Name)
	p.indent++
	for _, d := range m.Decls {
		switch d := d.(type) {
		case *TypeDecl:
			p.line("type %s;", d.Name)
		case *ModConstDecl:
			p.line("const %s : %s;", d.Name, d.Type)
		case *SubDecl:
			if d.Result != nil {
				p.line("function %s(%s) : %s;", d.Name, params(d.Params), d.Result)
			} else {
				p.line("procedure %s(%s);", d.Name, params(d.Params))
			}
		}
	}
	p.indent--
	p.line("end;")
	p.line("")
}

func (p *printer) protocol(pr *Protocol) {
	p.line("protocol %s begin", pr.Name)
	p.indent++
	for _, d := range pr.Decls {
		switch d := d.(type) {
		case *ProtVarDecl:
			p.line("var %s : %s;", d.Name, d.Type)
		case *ProtConstDecl:
			p.line("const %s := %s;", d.Name, ExprString(d.Value))
		case *StateDecl:
			t := ""
			if d.Transient {
				t = " transient"
			}
			p.line("state %s(%s)%s;", d.Name, params(d.Params), t)
		case *MessageDecl:
			p.line("message %s;", d.Name)
		}
	}
	p.indent--
	p.line("end;")
	p.line("")
}

func (p *printer) state(s *State) {
	qual := ""
	if s.Proto != nil {
		qual = s.Proto.Name + "."
	}
	p.line("state %s%s(%s) begin", qual, s.Name, params(s.Params))
	p.indent++
	for _, h := range s.Handlers {
		p.handler(h)
	}
	p.indent--
	p.line("end;")
	p.line("")
}

func (p *printer) handler(h *Handler) {
	p.line("message %s(%s)", h.Name, params(h.Params))
	if len(h.Locals) > 0 {
		p.indent++
		p.line("var")
		p.indent++
		for _, g := range h.Locals {
			p.line("%s : %s;", idents(g.Names), g.Type)
		}
		p.indent -= 2
	}
	p.line("begin")
	p.indent++
	p.stmts(h.Body)
	p.indent--
	p.line("end;")
}

func (p *printer) stmts(list []Stmt) {
	for _, s := range list {
		p.stmt(s)
	}
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *IfStmt:
		p.line("if (%s) then", ExprString(s.Cond))
		p.indent++
		p.stmts(s.Then)
		p.indent--
		if len(s.Else) > 0 {
			p.line("else")
			p.indent++
			p.stmts(s.Else)
			p.indent--
		}
		p.line("endif;")
	case *WhileStmt:
		p.line("while (%s) do", ExprString(s.Cond))
		p.indent++
		p.stmts(s.Body)
		p.indent--
		p.line("end;")
	case *CallStmt:
		p.line("%s;", ExprString(s.Call))
	case *AssignStmt:
		p.line("%s := %s;", s.LHS, ExprString(s.RHS))
	case *SuspendStmt:
		p.line("suspend(%s, %s);", s.Cont, ExprString(s.Target))
	case *ResumeStmt:
		p.line("resume(%s);", ExprString(s.Cont))
	case *ReturnStmt:
		if s.Value != nil {
			p.line("return %s;", ExprString(s.Value))
		} else {
			p.line("return;")
		}
	case *PrintStmt:
		p.line("print(%s);", exprList(s.Args))
	default:
		p.line("-- <unknown stmt %T>", s)
	}
}

func params(list []*Param) string {
	var parts []string
	for _, g := range list {
		s := ""
		if g.ByRef {
			s = "var "
		}
		parts = append(parts, s+idents(g.Names)+" : "+g.Type.Name)
	}
	return strings.Join(parts, "; ")
}

func idents(names []*Ident) string {
	var parts []string
	for _, n := range names {
		parts = append(parts, n.Name)
	}
	return strings.Join(parts, ", ")
}

func exprList(args []Expr) string {
	var parts []string
	for _, a := range args {
		parts = append(parts, ExprString(a))
	}
	return strings.Join(parts, ", ")
}

// ExprString renders an expression as Teapot source.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *BoolLit:
		if e.Value {
			return "true"
		}
		return "false"
	case *StringLit:
		return fmt.Sprintf("%q", e.Value)
	case *Name:
		return e.Ident.Name
	case *CallExpr:
		return fmt.Sprintf("%s(%s)", e.Func, exprList(e.Args))
	case *StateExpr:
		return fmt.Sprintf("%s{%s}", e.Name, exprList(e.Args))
	case *BinExpr:
		op := e.Op.String()
		if e.Op == token.KWAND {
			op = "and"
		} else if e.Op == token.KWOR {
			op = "or"
		}
		return fmt.Sprintf("%s %s %s", ExprString(e.X), op, ExprString(e.Y))
	case *UnExpr:
		if e.Op == token.KWNOT || e.Op == token.NOT {
			return "not " + ExprString(e.X)
		}
		return e.Op.String() + ExprString(e.X)
	case *ParenExpr:
		return "(" + ExprString(e.X) + ")"
	}
	return fmt.Sprintf("<expr %T>", e)
}

package analysis_test

import (
	"strings"
	"testing"

	"teapot/internal/analysis"
	"teapot/internal/protocols/stache"
	"teapot/internal/source"
)

// TestDupIdempotenceStacheFT: the advisory fires exactly on the documented
// dup=2 edge of the fault-tolerant protocol — handlers of droppable (and
// therefore retransmittable, and therefore duplicable) messages that
// resume a continuation without a duplicate-delivery guard. The home-side
// acknowledgement path is guarded by TakeAwaiting and must stay silent.
func TestDupIdempotenceStacheFT(t *testing.T) {
	rep := analysis.Analyze(stache.MustCompileFT(true).Protocol)
	ds := rep.ByCheck("dup-idempotence")
	var handlers []string
	for _, d := range ds {
		if d.Severity != source.SevInfo {
			t.Errorf("severity = %v, want info (advisory: dup budgets beyond 1 are a known edge)", d.Severity)
		}
		for _, h := range []string{
			"Cache_Inv_To_RO.GET_RO_RESP",
			"Cache_Inv_To_RW.GET_RW_RESP",
			"Cache_RO_To_RW.UPGRADE_ACK",
			"Cache_RO_To_RW.GET_RW_RESP",
			"Home_AwaitPutData.PUT_DATA_RESP",
		} {
			if strings.Contains(d.Msg, h) {
				handlers = append(handlers, h)
			}
		}
	}
	if len(ds) != 5 || len(handlers) != 5 {
		t.Errorf("findings = %d (matched %v), want the 5 unguarded resume paths:\n%s",
			len(ds), handlers, rep)
	}
	// The invalidation-ack handler counts acks through TakeAwaiting — a
	// guarded, support-mediated update — and must not be flagged.
	for _, d := range ds {
		if strings.Contains(d.Msg, "INVAL_ACK") {
			t.Errorf("guarded handler flagged: %s", d.Msg)
		}
	}
}

// TestDupIdempotenceSilentWithoutTimeout: protocols with no TIMEOUT never
// see retransmission-induced duplicates on a perfect network, so the lint
// stays quiet on the base protocol even though its handlers resume
// continuations unguarded.
func TestDupIdempotenceSilentWithoutTimeout(t *testing.T) {
	rep := analysis.Analyze(stache.MustCompile(true).Protocol)
	if ds := rep.ByCheck("dup-idempotence"); len(ds) != 0 {
		t.Errorf("base stache flagged (no TIMEOUT declared): %v", ds)
	}
}

package vm

import (
	"fmt"
	"strings"

	"teapot/internal/ir"
	"teapot/internal/sema"
	"teapot/internal/token"
)

// Host is the embedding a handler activation runs against: the simulator
// runtime or the model checker. All protocol effects flow through it.
type Host interface {
	// Per-block protocol variables of the current block.
	LoadVar(slot int) Value
	StoreVar(slot int, v Value)
	// ModConst resolves an abstract module constant by slot.
	ModConst(slot int) Value
	// Current-message builtin values.
	MessageTag() Value
	MessageSrc() Value
	// Effects.
	Send(data bool, dst, tag, id Value, payload []Value) error
	SetState(sv *StateVal) error
	Enqueue() error
	Nack() error
	Drop() error
	WakeUp(id Value) error
	AccessChange(id Value, mode sema.AccessMode) error
	RecvData(id Value, mode sema.AccessMode) error
	MyNode() Value
	HomeNode(id Value) Value
	// BlockID and BlockInfo identify the block the current dispatch
	// concerns; resumed fragments rematerialize their id/info parameters
	// from them instead of saving them in continuation records.
	BlockID() Value
	BlockInfo() Value
	// CallSupport invokes a module support routine. Arguments are passed
	// by reference so var parameters can be mutated.
	CallSupport(name string, args []*Value) (Value, error)
	// ProtocolError reports a protocol-level error (Error builtin,
	// division by zero, runaway handler).
	ProtocolError(msg string) error
	Print(s string)
}

// Counters accumulates execution statistics across handler activations.
// These feed the paper's Table 1/2 "Allocs" columns and the simulator's
// cycle cost model.
type Counters struct {
	Instrs       int64 // IR instructions interpreted
	Handlers     int64 // handler activations (dispatches)
	HeapConts    int64 // dynamically allocated continuation records
	StaticConts  int64 // statically allocated (optimized-away) records
	Resumes      int64 // dynamic (indirect) resumes
	ConstResumes int64 // constant-continuation (direct) resumes
	Suspends     int64
	Calls        int64 // support routine calls
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.Instrs += o.Instrs
	c.Handlers += o.Handlers
	c.HeapConts += o.HeapConts
	c.StaticConts += o.StaticConts
	c.Resumes += o.Resumes
	c.ConstResumes += o.ConstResumes
	c.Suspends += o.Suspends
	c.Calls += o.Calls
}

// Tracer observes the continuation machinery from inside the interpreter:
// the rare ops (Suspend, Resume, MakeCont) that the Host interface cannot
// distinguish from ordinary effects. Installed by the runtime engine when
// an observability sink is attached; nil costs one pointer test at those
// ops only — never on the per-instruction path.
type Tracer interface {
	// TraceSuspend fires after a Suspend transitioned into sv.
	TraceSuspend(sv *StateVal)
	// TraceResume fires before control transfers into c. direct reports a
	// constant-continuation (inlined) resume.
	TraceResume(c *Cont, direct bool)
	// TraceContAlloc fires when a continuation record is built.
	TraceContAlloc(c *Cont)
}

// Exec interprets handlers of one compiled program.
type Exec struct {
	Prog     *ir.Program
	Counters Counters
	// ConstCont mirrors the compile option: when set, continuations at
	// static/constant sites are not counted as heap allocations.
	ConstCont bool
	// MaxSteps bounds one activation (runaway-loop guard); 0 = default.
	MaxSteps int
	// Tracer, when non-nil, observes Suspend/Resume/MakeCont.
	Tracer Tracer
}

// DefaultMaxSteps bounds a single handler activation.
const DefaultMaxSteps = 1 << 20

// RunHandler executes handler f from its entry fragment. stateArgs are the
// current state's arguments; params are the delivered message's standard
// triple plus payload. The activation runs to completion (through any
// Resumes) before returning.
func (x *Exec) RunHandler(h Host, f *ir.Func, stateArgs, params []Value) error {
	if len(stateArgs) != f.NumStateParams {
		return fmt.Errorf("vm: %s: got %d state args, want %d", f.Name, len(stateArgs), f.NumStateParams)
	}
	if len(params) != f.NumParams {
		return fmt.Errorf("vm: %s: got %d params, want %d", f.Name, len(params), f.NumParams)
	}
	regs := make([]Value, f.NumRegs)
	copy(regs, stateArgs)
	copy(regs[f.NumStateParams:], params)
	x.Counters.Handlers++
	return x.run(h, f, f.Frags[0].Start, regs)
}

// Resume executes a continuation (used by the runtime when a Resume
// transfers into a previously suspended handler from outside the VM; within
// an activation resumes are handled inline).
func (x *Exec) Resume(h Host, c *Cont) error {
	regs := x.restore(h, c)
	return x.run(h, c.Fn, c.Fn.Frags[c.Frag].Start, regs)
}

func (x *Exec) restore(h Host, c *Cont) []Value {
	regs := make([]Value, c.Fn.NumRegs)
	saved := c.Fn.Frags[c.Frag].Saved
	for i, r := range saved {
		regs[r] = c.Saved[i]
	}
	// Rematerialize the block-derived parameters (see cont.Transform).
	if c.Fn.NumParams >= 2 {
		regs[c.Fn.ParamReg(0)] = h.BlockID()
		regs[c.Fn.ParamReg(1)] = h.BlockInfo()
	}
	return regs
}

func (x *Exec) run(h Host, f *ir.Func, pc int, regs []Value) error {
	steps := 0
	max := x.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	for {
		if pc >= len(f.Code) {
			return nil // fell off the end: implicit return
		}
		if steps++; steps > max {
			return h.ProtocolError(fmt.Sprintf("handler %s exceeded %d steps (runaway loop?)", f.Name, max))
		}
		x.Counters.Instrs++
		in := &f.Code[pc]
		switch in.Op {
		case ir.OpNop:
		case ir.OpConst:
			regs[in.Dst] = constValue(in)
		case ir.OpConstStr:
			regs[in.Dst] = StringVal(in.Str)
		case ir.OpMove:
			regs[in.Dst] = regs[in.A]
		case ir.OpBin:
			v, err := x.binop(h, in, regs[in.A], regs[in.B])
			if err != nil {
				return err
			}
			regs[in.Dst] = v
		case ir.OpUn:
			switch in.Tok {
			case token.KWNOT:
				regs[in.Dst] = BoolVal(!regs[in.A].Bool())
			case token.MINUS:
				regs[in.Dst] = IntVal(-regs[in.A].Int)
			default:
				return fmt.Errorf("vm: bad unary op %v", in.Tok)
			}
		case ir.OpLoadVar:
			regs[in.Dst] = h.LoadVar(in.Idx)
		case ir.OpStoreVar:
			h.StoreVar(in.Idx, regs[in.A])
		case ir.OpModConst:
			regs[in.Dst] = h.ModConst(in.Idx)
		case ir.OpBuiltinVal:
			switch sema.Builtin(in.Idx) {
			case sema.BMessageTag:
				regs[in.Dst] = h.MessageTag()
			case sema.BMessageSrc:
				regs[in.Dst] = h.MessageSrc()
			default:
				return fmt.Errorf("vm: bad builtin value %d", in.Idx)
			}
		case ir.OpCall:
			if err := x.callOp(h, f, in, regs); err != nil {
				return err
			}
		case ir.OpMakeState:
			args := make([]Value, len(in.Args))
			for i, r := range in.Args {
				args[i] = regs[r]
			}
			regs[in.Dst] = StateValue(&StateVal{State: in.Idx, Args: args})
		case ir.OpMakeCont:
			regs[in.Dst] = x.makeCont(f, in, regs)
		case ir.OpSuspend:
			x.Counters.Suspends++
			sv := regs[in.A].State()
			if sv == nil {
				return h.ProtocolError(fmt.Sprintf("suspend in %s to non-state value", f.Name))
			}
			if err := h.SetState(sv); err != nil {
				return err
			}
			if x.Tracer != nil {
				x.Tracer.TraceSuspend(sv)
			}
			return nil
		case ir.OpResume:
			c := regs[in.A].Cont()
			if c == nil {
				return h.ProtocolError(fmt.Sprintf("resume in %s of non-continuation value", f.Name))
			}
			if in.Idx >= 0 {
				x.Counters.ConstResumes++
			} else {
				x.Counters.Resumes++
			}
			if x.Tracer != nil {
				x.Tracer.TraceResume(c, in.Idx >= 0)
			}
			// Tail-transfer into the suspended handler.
			f = c.Fn
			regs = x.restore(h, c)
			pc = f.Frags[c.Frag].Start
			continue
		case ir.OpReturn:
			return nil
		case ir.OpJump:
			pc = in.Idx
			continue
		case ir.OpBranch:
			if regs[in.A].Bool() {
				pc = in.Idx
			} else {
				pc = in.Idx2
			}
			continue
		case ir.OpPrint:
			parts := make([]string, len(in.Args))
			for i, r := range in.Args {
				parts[i] = regs[r].String()
			}
			h.Print(strings.Join(parts, " "))
		default:
			return fmt.Errorf("vm: unknown opcode %v", in.Op)
		}
		pc++
	}
}

func constValue(in *ir.Instr) Value {
	switch in.Kind {
	case ir.KBool:
		return Value{Kind: KBool, Int: in.Int}
	case ir.KNode:
		return Value{Kind: KNode, Int: in.Int}
	case ir.KID:
		return Value{Kind: KID, Int: in.Int}
	case ir.KMsg:
		return Value{Kind: KMsg, Int: in.Int}
	case ir.KAccess:
		return Value{Kind: KAccess, Int: in.Int}
	}
	return IntVal(in.Int)
}

func (x *Exec) makeCont(f *ir.Func, in *ir.Instr, regs []Value) Value {
	saved := make([]Value, len(in.Args))
	for i, r := range in.Args {
		saved[i] = regs[r]
	}
	site := f.Frags[in.Idx].Site
	heap := true
	if x.ConstCont && site >= 0 && site < len(x.Prog.Sites) {
		s := x.Prog.Sites[site]
		if s.Static || s.Constant {
			heap = false
		}
	}
	if heap {
		x.Counters.HeapConts++
	} else {
		x.Counters.StaticConts++
	}
	c := &Cont{Fn: f, Frag: in.Idx, Saved: saved, Site: site, Heap: heap}
	if x.Tracer != nil {
		x.Tracer.TraceContAlloc(c)
	}
	return ContVal(c)
}

func (x *Exec) binop(h Host, in *ir.Instr, a, b Value) (Value, error) {
	switch in.Tok {
	case token.PLUS:
		return IntVal(a.Int + b.Int), nil
	case token.MINUS:
		return IntVal(a.Int - b.Int), nil
	case token.STAR:
		return IntVal(a.Int * b.Int), nil
	case token.SLASH:
		if b.Int == 0 {
			return Value{}, h.ProtocolError("division by zero")
		}
		return IntVal(a.Int / b.Int), nil
	case token.PERCENT:
		if b.Int == 0 {
			return Value{}, h.ProtocolError("modulo by zero")
		}
		return IntVal(a.Int % b.Int), nil
	case token.EQ:
		return BoolVal(Equal(a, b)), nil
	case token.NEQ:
		return BoolVal(!Equal(a, b)), nil
	case token.LT:
		return BoolVal(a.Int < b.Int), nil
	case token.LE:
		return BoolVal(a.Int <= b.Int), nil
	case token.GT:
		return BoolVal(a.Int > b.Int), nil
	case token.GE:
		return BoolVal(a.Int >= b.Int), nil
	case token.AND:
		return BoolVal(a.Bool() && b.Bool()), nil
	case token.OR:
		return BoolVal(a.Bool() || b.Bool()), nil
	}
	return Value{}, fmt.Errorf("vm: bad binary op %v", in.Tok)
}

func (x *Exec) callOp(h Host, f *ir.Func, in *ir.Instr, regs []Value) error {
	switch in.Fn.Builtin {
	case sema.BNone:
		x.Counters.Calls++
		args := make([]*Value, len(in.Args))
		for i, r := range in.Args {
			args[i] = &regs[r]
		}
		res, err := h.CallSupport(in.Fn.Name, args)
		if err != nil {
			return err
		}
		if in.Dst != ir.NoReg {
			regs[in.Dst] = res
		}
		return nil
	case sema.BSend, sema.BSendData:
		payload := make([]Value, 0, len(in.Args)-3)
		for _, r := range in.Args[3:] {
			payload = append(payload, regs[r])
		}
		return h.Send(in.Fn.Builtin == sema.BSendData, regs[in.Args[0]], regs[in.Args[1]], regs[in.Args[2]], payload)
	case sema.BSetState:
		sv := regs[in.Args[1]].State()
		if sv == nil {
			return h.ProtocolError("SetState of non-state value")
		}
		return h.SetState(sv)
	case sema.BEnqueue:
		return h.Enqueue()
	case sema.BNack:
		return h.Nack()
	case sema.BDrop:
		return h.Drop()
	case sema.BError:
		msg := regs[in.Args[0]].Str
		extra := make([]any, 0, len(in.Args)-1)
		for _, r := range in.Args[1:] {
			extra = append(extra, regs[r].String())
		}
		if len(extra) > 0 && strings.Contains(msg, "%") {
			msg = fmt.Sprintf(strings.ReplaceAll(msg, "%s", "%v"), extra...)
		} else if len(extra) > 0 {
			msg = fmt.Sprintf("%s %v", msg, extra)
		}
		return h.ProtocolError(msg)
	case sema.BWakeUp:
		return h.WakeUp(regs[in.Args[0]])
	case sema.BAccessChange:
		return h.AccessChange(regs[in.Args[0]], sema.AccessMode(regs[in.Args[1]].Int))
	case sema.BRecvData:
		return h.RecvData(regs[in.Args[0]], sema.AccessMode(regs[in.Args[1]].Int))
	case sema.BMyNode:
		if in.Dst != ir.NoReg {
			regs[in.Dst] = h.MyNode()
		}
		return nil
	case sema.BHomeNode:
		if in.Dst != ir.NoReg {
			regs[in.Dst] = h.HomeNode(regs[in.Args[0]])
		}
		return nil
	case sema.BMsgToStr:
		if in.Dst != ir.NoReg {
			m := int(regs[in.Args[0]].Int)
			name := fmt.Sprintf("msg%d", m)
			if m >= 0 && m < len(x.Prog.Sema.Messages) {
				name = x.Prog.Sema.Messages[m].Name
			}
			regs[in.Dst] = StringVal(name)
		}
		return nil
	}
	return fmt.Errorf("vm: unknown builtin %d", in.Fn.Builtin)
}
